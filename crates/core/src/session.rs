//! The staged joint-transmission API: one [`JointSession`] per joint
//! frame, driven role by role.
//!
//! [`run_joint_transmission`](crate::joint::run_joint_transmission) plays
//! the whole §4.4 protocol in one opaque call; this module exposes the
//! same protocol as *explicit, separately-invocable stages*, each a
//! per-node struct with its own inputs and outputs, all sharing the
//! medium through [`ssync_sim::Network`]:
//!
//! * [`LeadTx`] — the lead sender's role: lays out the frame geometry
//!   ([`LeadFrame`]), schedules the sync header, and schedules the lead's
//!   space-time-coded data after the SIFS + training slots;
//! * [`CosenderJoin`] — one co-sender's role: detect the header in its
//!   own noisy capture, phase-slope-estimate the arrival, subtract the
//!   measured lead→co propagation delay, add the wait time, quantise to
//!   the sample clock, and transmit training + data (§4.3). A co-sender
//!   that cannot join returns a typed [`JoinFailure`] instead of going
//!   silent;
//! * [`ReceiverDecode`] — one receiver's role: joint channel estimation,
//!   space-time combining, and the §4.5 misalignment report.
//!
//! [`JointSession::run`] drives all three stages in protocol order and is
//! what the compatibility wrapper delegates to — its outputs are
//! byte-identical to the historical monolith. Driving the stages yourself
//! is what the monolith could never do: joining a co-sender against a
//! *different* session's frame (stale-packet experiments), skipping the
//! lead entirely, or decoding at receivers the senders never planned for.
//!
//! ```no_run
//! # use ssync_core::session::JointSession;
//! # use ssync_core::{CosenderPlan, DelayDatabase, JointConfig};
//! # use ssync_sim::{Network, NodeId};
//! # use rand::rngs::StdRng;
//! # use rand::SeedableRng;
//! # fn demo(net: &mut Network, db: &DelayDatabase) {
//! let mut rng = StdRng::seed_from_u64(1);
//! let session = JointSession::new(NodeId(0))
//!     .cosender(CosenderPlan { node: NodeId(1), wait_s: 80e-9 })
//!     .receiver(NodeId(2))
//!     .payload(b"hello".to_vec())
//!     .config(JointConfig::default());
//! // Staged: every role separately.
//! let frame = session.lead_tx().transmit(net);
//! let join = session.cosender_join(0, &frame).join(net, &mut rng, db);
//! let report = session.receiver_decode(NodeId(2), &frame).decode(net, &mut rng);
//! # let _ = (join, report);
//! # }
//! ```

use crate::combiner::{
    decode_joint_data_with, CombineWorkspace, CombinerStats, DataSectionSpec, JointDataWindow,
};
use crate::jce::{
    estimate_from_training_slot, training_slot_energy_ratio, RoleChannels, PRESENCE_THRESHOLD,
};
use crate::joint::{CosenderPlan, JointConfig, JointOutcome, ReceiverReport};
use crate::sls::{arrival_estimate_s, DelayDatabase};
use crate::timeline::{JointTimeline, HEADER_RATE};
use crate::wire::{packet_id, SyncHeader};
use rand::Rng;
use ssync_dsp::mixer::apply_cfo_from;
use ssync_dsp::{Complex64, FftPlan};
use ssync_obs::{FrameClass, JoinFailureClass, JoinResult, TraceEventKind, TraceRecorder};
use ssync_phy::chanest::{delay_from_slope, phase_slope, ChannelEstimate};
use ssync_phy::preamble::cosender_training;
use ssync_phy::workspace::{RxWorkspace, TxWorkspace};
use ssync_phy::{crc, frame, Params, Receiver, Transmitter};
use ssync_sim::{Network, NodeId, Time};
use ssync_stbc::codebook::codeword_for;

/// Margin of noise-only samples before the lead's header.
pub(crate) const CAPTURE_MARGIN: usize = 400;

/// Why a co-sender did not join a joint transmission (§4.4).
///
/// The monolithic driver dropped out of the join loop silently; the staged
/// API reports the first protocol step that failed so callers (tracking
/// loops, rate controllers, the opportunistic-routing layer) can react to
/// *why* a sender stayed quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinFailure {
    /// The sync header never decoded at this co-sender (no detection, or
    /// the frame failed its CRC).
    NoDetect,
    /// A frame decoded but its SIGNAL flags did not carry `FLAG_JOINT` —
    /// the co-sender heard ordinary traffic, not a sync header.
    NotJointFlagged,
    /// The joint-flagged frame's payload did not parse as a [`SyncHeader`].
    MalformedHeader,
    /// The header announced a different packet than the one this co-sender
    /// holds (stale queue, or a concurrent lead).
    WrongPacket {
        /// The packet id this co-sender holds.
        expected: u16,
        /// The packet id the decoded header announced.
        heard: u16,
    },
    /// Delay compensation is on but the delay database holds no
    /// lead→co-sender entry, so the §4.3 arithmetic cannot run. (The
    /// monolith silently substituted a propagation delay of zero here and
    /// joined misaligned.)
    MissingDelay {
        /// The lead sender of the frame.
        lead: NodeId,
        /// The co-sender missing its delay measurement.
        cosender: NodeId,
    },
}

impl JoinFailure {
    /// The payload-free trace classification of this failure.
    pub fn class(&self) -> JoinFailureClass {
        match self {
            JoinFailure::NoDetect => JoinFailureClass::NoDetect,
            JoinFailure::NotJointFlagged => JoinFailureClass::NotJointFlagged,
            JoinFailure::MalformedHeader => JoinFailureClass::MalformedHeader,
            JoinFailure::WrongPacket { .. } => JoinFailureClass::WrongPacket,
            JoinFailure::MissingDelay { .. } => JoinFailureClass::MissingDelay,
        }
    }
}

impl std::fmt::Display for JoinFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinFailure::NoDetect => write!(f, "sync header not detected"),
            JoinFailure::NotJointFlagged => write!(f, "decoded frame not joint-flagged"),
            JoinFailure::MalformedHeader => write!(f, "joint frame payload not a sync header"),
            JoinFailure::WrongPacket { expected, heard } => {
                write!(
                    f,
                    "holds packet {expected:#06x}, header announced {heard:#06x}"
                )
            }
            JoinFailure::MissingDelay { lead, cosender } => {
                write!(f, "no delay-database entry for {lead}<->{cosender}")
            }
        }
    }
}

/// A co-sender's successful join: when it transmitted and what it measured.
#[derive(Debug, Clone, Copy)]
pub struct CosenderTx {
    /// The co-sender node.
    pub node: NodeId,
    /// Ether time its training transmission began.
    pub training_time: Time,
    /// Ether time its data section began.
    pub data_time: Time,
    /// The lead-relative CFO it measured from the sync header, Hz
    /// (`f_lead − f_co`; what §5 pre-rotation corrects).
    pub cfo_hz: f64,
}

/// One co-sender's outcome in a joint transmission: the node and either
/// its transmission record or the typed reason it stayed silent.
#[derive(Debug, Clone)]
pub struct CosenderOutcome {
    /// The co-sender node.
    pub node: NodeId,
    /// Join record, or the first protocol step that failed.
    pub join: Result<CosenderTx, JoinFailure>,
}

impl CosenderOutcome {
    /// Whether this co-sender transmitted.
    pub fn joined(&self) -> bool {
        self.join.is_ok()
    }
}

/// The lead's scheduled frame: geometry plus the ether times every other
/// stage keys off. Produced by [`LeadTx`]; consumed by [`CosenderJoin`]
/// and [`ReceiverDecode`].
#[derive(Debug, Clone)]
pub struct LeadFrame {
    /// The sync header the lead announces.
    pub header: SyncHeader,
    /// The joint-frame layout (Figs. 6–7).
    pub timeline: JointTimeline,
    /// CRC-appended payload every sender derives its waveform from.
    pub psdu: Vec<u8>,
    /// Ether time of the sync header's first sample.
    pub t0: Time,
    /// Ether time of the lead's first data sample.
    pub data_time: Time,
}

/// One joint transmission, described once and driven stage by stage.
///
/// Build with [`JointSession::new`] + the chained setters, then either
/// call [`run`](JointSession::run) (the whole protocol, in order) or
/// invoke the per-role stages yourself via [`lead_tx`](JointSession::lead_tx),
/// [`cosender_join`](JointSession::cosender_join) and
/// [`receiver_decode`](JointSession::receiver_decode).
#[derive(Debug, Clone)]
pub struct JointSession {
    lead: NodeId,
    plans: Vec<CosenderPlan>,
    receivers: Vec<NodeId>,
    payload: Vec<u8>,
    config: JointConfig,
}

impl JointSession {
    /// A session led by `lead`, with no co-senders or receivers yet.
    pub fn new(lead: NodeId) -> Self {
        JointSession {
            lead,
            plans: Vec::new(),
            receivers: Vec::new(),
            payload: Vec::new(),
            config: JointConfig::default(),
        }
    }

    /// Adds one co-sender plan (node + §4.3 wait time).
    pub fn cosender(mut self, plan: CosenderPlan) -> Self {
        self.plans.push(plan);
        self
    }

    /// Adds several co-sender plans.
    pub fn cosenders<I: IntoIterator<Item = CosenderPlan>>(mut self, plans: I) -> Self {
        self.plans.extend(plans);
        self
    }

    /// Adds one receiver.
    pub fn receiver(mut self, node: NodeId) -> Self {
        self.receivers.push(node);
        self
    }

    /// Adds several receivers.
    pub fn receivers<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        self.receivers.extend(nodes);
        self
    }

    /// Sets the packet every sender holds.
    pub fn payload(mut self, payload: impl Into<Vec<u8>>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Sets the joint-transmission knobs.
    pub fn config(mut self, config: JointConfig) -> Self {
        self.config = config;
        self
    }

    /// The lead sender.
    pub fn lead(&self) -> NodeId {
        self.lead
    }

    /// The co-sender plans, in slot order.
    pub fn plans(&self) -> &[CosenderPlan] {
        &self.plans
    }

    /// The receivers.
    pub fn receiver_nodes(&self) -> &[NodeId] {
        &self.receivers
    }

    /// Stage 1, the lead sender's role.
    pub fn lead_tx(&self) -> LeadTx<'_> {
        LeadTx { session: self }
    }

    /// Stage 2, co-sender `index`'s role against a scheduled `frame`.
    ///
    /// # Panics
    /// Panics if `index` is out of range of the configured co-senders.
    pub fn cosender_join<'a>(&'a self, index: usize, frame: &'a LeadFrame) -> CosenderJoin<'a> {
        assert!(
            index < self.plans.len(),
            "co-sender {index} of {}",
            self.plans.len()
        );
        CosenderJoin {
            session: self,
            index,
            frame,
        }
    }

    /// Stage 3, receiver `node`'s role against a scheduled `frame`.
    pub fn receiver_decode<'a>(&'a self, node: NodeId, frame: &'a LeadFrame) -> ReceiverDecode<'a> {
        ReceiverDecode {
            session: self,
            node,
            frame,
        }
    }

    /// Runs the complete protocol: lead transmission, every co-sender's
    /// join attempt (in slot order), then every receiver's decode — the
    /// exact stage order (and RNG consumption order) of the historical
    /// monolith, so the compatibility wrapper stays byte-identical.
    pub fn run<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        db: &DelayDatabase,
    ) -> JointOutcome {
        // One set of planned machinery (FFT tables, detector, modem,
        // scratch buffers) for the whole frame; the stage wrappers build
        // their own when invoked standalone.
        self.run_with(net, rng, db, &mut SessionWorkspace::new(net.params.clone()))
    }

    /// [`JointSession::run`] through a reusable [`SessionWorkspace`]:
    /// callers driving many sessions reuse all planned machinery and
    /// scratch across frames. Bit-identical to [`JointSession::run`].
    pub fn run_with<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        db: &DelayDatabase,
        ws: &mut SessionWorkspace,
    ) -> JointOutcome {
        let frame = self.lead_tx().transmit_with(net, ws);
        let cosenders: Vec<CosenderOutcome> = (0..self.plans.len())
            .map(|i| CosenderOutcome {
                node: self.plans[i].node,
                join: self.cosender_join(i, &frame).join_with(net, rng, db, ws),
            })
            .collect();
        let mut reports = Vec::with_capacity(self.receivers.len());
        let mut true_misalign = Vec::with_capacity(self.receivers.len());
        for &rcv in &self.receivers {
            reports.push(self.receiver_decode(rcv, &frame).decode_with(net, rng, ws));
            true_misalign.push(ground_truth_misalign_s(
                net, self.lead, &frame, &cosenders, rcv,
            ));
        }
        let co_tx_times = cosenders
            .iter()
            .map(|c| c.join.as_ref().ok().map(|tx| tx.training_time))
            .collect();
        JointOutcome {
            reports,
            true_misalign_s: true_misalign,
            co_tx_times,
            cosenders,
        }
    }
}

/// Ground-truth data-section misalignment of each co-sender vs the lead at
/// receiver `rcv`, from the simulator's exact delays (`NaN` for co-senders
/// that did not join) — the quantity the Fig. 12 experiment compares the
/// receivers' *measurements* against.
pub fn ground_truth_misalign_s(
    net: &Network,
    lead: NodeId,
    frame: &LeadFrame,
    cosenders: &[CosenderOutcome],
    rcv: NodeId,
) -> Vec<f64> {
    cosenders
        .iter()
        .map(|co| match &co.join {
            Ok(tx) => {
                let lead_arrival = frame.data_time.as_secs_f64() + net.true_delay_s(lead, rcv);
                let co_arrival = tx.data_time.as_secs_f64() + net.true_delay_s(co.node, rcv);
                co_arrival - lead_arrival
            }
            Err(_) => f64::NAN,
        })
        .collect()
}

/// The planned per-frame machinery and scratch every stage shares: the
/// numerology, FFT tables, the modem transmitter, the detector-equipped
/// receiver, and the reusable TX/RX/combine workspaces.
///
/// Built once per [`JointSession::run`]; a stage invoked through its
/// allocating entry point builds a throwaway one. Callers driving many
/// sessions (sweeps, benches, the last-hop downlink) hold one
/// `SessionWorkspace` per thread and pass it to the `_with` stage variants
/// — each stage then runs its per-symbol hot loops without heap
/// allocation, and the outputs stay byte-identical to the allocating
/// paths.
pub struct SessionWorkspace {
    params: Params,
    fft: FftPlan,
    tx: Transmitter,
    rx: Receiver,
    /// Transmit-side modulator scratch (header waveform).
    tx_ws: TxWorkspace,
    /// Receive-chain scratch (detection, equalisation, soft bits).
    rx_ws: RxWorkspace,
    /// Joint data-section scratch (space-time coding and combining).
    combine_ws: CombineWorkspace,
    /// CFO-corrected capture copy of the receiver-decode stage.
    capture_scratch: Vec<Complex64>,
}

impl SessionWorkspace {
    /// Plans all machinery for one numerology.
    pub fn new(params: Params) -> Self {
        SessionWorkspace {
            fft: FftPlan::new(params.fft_size),
            tx: Transmitter::new(params.clone()),
            rx: Receiver::new(params.clone()),
            tx_ws: TxWorkspace::new(&params),
            rx_ws: RxWorkspace::new(&params),
            combine_ws: CombineWorkspace::new(&params),
            capture_scratch: Vec::new(),
            params,
        }
    }

    /// The numerology this workspace was planned for.
    pub fn params(&self) -> &Params {
        &self.params
    }
}

/// The lead sender's stage: frame layout + header and data scheduling.
#[derive(Debug, Clone, Copy)]
pub struct LeadTx<'a> {
    session: &'a JointSession,
}

impl LeadTx<'_> {
    /// Computes the frame schedule without touching the medium: the sync
    /// header, the Fig. 6 timeline, and the ether times of the header and
    /// the lead's data section. Useful to stage a [`CosenderJoin`] or
    /// [`ReceiverDecode`] against a frame somebody *else* put on the air.
    pub fn schedule(&self, params: &Params) -> LeadFrame {
        let s = self.session;
        let period = params.sample_period_fs();
        let psdu = crc::append_crc(&s.payload);
        let header = SyncHeader {
            lead: s.lead.0 as u16,
            packet_id: packet_id(&s.payload),
            rate: s.config.rate,
            psdu_len: psdu.len() as u16,
            cp_extension: s.config.cp_extension as u8,
            n_cosenders: s.plans.len() as u8,
        };
        let timeline = JointTimeline::new(
            params,
            psdu.len(),
            s.config.rate,
            s.config.cp_extension,
            s.plans.len(),
        );
        let t0 = Time((CAPTURE_MARGIN as u64) * period);
        let data_time = Time(t0.0 + (timeline.data_start() as u64) * period);
        LeadFrame {
            header,
            timeline,
            psdu,
            t0,
            data_time,
        }
    }

    /// Clears the medium, schedules the sync header at `t0` and the lead's
    /// space-time-coded data after the SIFS + training slots, and returns
    /// the frame the other stages key off.
    pub fn transmit(&self, net: &mut Network) -> LeadFrame {
        self.transmit_with(net, &mut SessionWorkspace::new(net.params.clone()))
    }

    /// [`LeadTx::transmit`] through a reusable [`SessionWorkspace`].
    pub fn transmit_with(&self, net: &mut Network, ws: &mut SessionWorkspace) -> LeadFrame {
        let s = self.session;
        let frame_sched = self.schedule(&ws.params);

        net.medium.clear_transmissions();
        // The medium takes ownership of each waveform, so the outer vectors
        // are necessarily fresh; the workspace still serves the per-symbol
        // modulator scratch inside.
        let mut header_wave = Vec::new();
        ws.tx.frame_waveform_into(
            &frame_sched.header.to_bytes(),
            HEADER_RATE,
            frame::FLAG_JOINT,
            &mut ws.tx_ws,
            &mut header_wave,
        );
        debug_assert_eq!(header_wave.len(), frame_sched.timeline.header_len);
        net.medium.transmit(s.lead, frame_sched.t0, header_wave);

        let spec = s.config.data_section(frame_sched.timeline.data_cp);
        let mut lead_data = Vec::new();
        crate::combiner::joint_data_waveform_into(
            &ws.params,
            &ws.fft,
            &frame_sched.psdu,
            codeword_for(0),
            &spec,
            &mut ws.combine_ws,
            &mut lead_data,
        );
        net.medium
            .transmit(s.lead, frame_sched.data_time, lead_data);
        frame_sched
    }

    /// [`LeadTx::transmit_with`] plus trace spans for the sync header and
    /// the lead's data section, stamped at `t_base_fs + <ether time>` so a
    /// session embedded in a larger simulation lands at the right absolute
    /// instant. Emission reads only the returned frame — the medium and
    /// RNG state are untouched relative to `transmit_with`.
    pub fn transmit_observed(
        &self,
        net: &mut Network,
        ws: &mut SessionWorkspace,
        trace: &mut TraceRecorder,
        t_base_fs: u64,
    ) -> LeadFrame {
        let frame_sched = self.transmit_with(net, ws);
        if trace.is_enabled() {
            let lead = self.session.lead.0 as u32;
            let period = ws.params.sample_period_fs();
            let tl = &frame_sched.timeline;
            trace.emit_span(
                t_base_fs + frame_sched.t0.0,
                tl.header_len as u64 * period,
                lead,
                TraceEventKind::FrameTx {
                    class: FrameClass::SyncHeader,
                    bytes: crate::wire::SYNC_HEADER_LEN as u32,
                    seq: frame_sched.header.packet_id,
                    dst: u16::MAX,
                },
            );
            trace.emit_span(
                t_base_fs + frame_sched.data_time.0,
                (tl.total_len() - tl.data_start()) as u64 * period,
                lead,
                TraceEventKind::FrameTx {
                    class: FrameClass::JointData,
                    bytes: frame_sched.psdu.len() as u32,
                    seq: frame_sched.header.packet_id,
                    dst: u16::MAX,
                },
            );
        }
        frame_sched
    }
}

/// One co-sender's stage: detect → estimate → compensate → quantise →
/// transmit (§4.3), or a typed [`JoinFailure`].
#[derive(Debug, Clone, Copy)]
pub struct CosenderJoin<'a> {
    session: &'a JointSession,
    index: usize,
    frame: &'a LeadFrame,
}

impl CosenderJoin<'_> {
    /// The co-sender this stage drives.
    pub fn node(&self) -> NodeId {
        self.session.plans[self.index].node
    }

    /// Attempts the join. On success the co-sender's training and data are
    /// on the medium and the returned [`CosenderTx`] records its timing;
    /// on failure nothing was transmitted and the reason is typed.
    pub fn join<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        db: &DelayDatabase,
    ) -> Result<CosenderTx, JoinFailure> {
        self.join_with(net, rng, db, &mut SessionWorkspace::new(net.params.clone()))
    }

    /// [`CosenderJoin::join`] through a reusable [`SessionWorkspace`].
    pub fn join_with<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        db: &DelayDatabase,
        ws: &mut SessionWorkspace,
    ) -> Result<CosenderTx, JoinFailure> {
        let s = self.session;
        let plan = &s.plans[self.index];
        let co = plan.node;
        let params = ws.params.clone();
        let params = &params;
        let period = params.sample_period_fs();
        let timeline = &self.frame.timeline;

        // 1. Detect the sync header in this co-sender's own noisy capture.
        let window = CAPTURE_MARGIN * 2 + timeline.header_len + 200;
        let buf = net.medium.capture(rng, co, Time::ZERO, window);
        let Ok(res) = ws.rx.receive_with(&buf, &mut ws.rx_ws) else {
            return Err(JoinFailure::NoDetect);
        };
        if res.signal.flags & frame::FLAG_JOINT == 0 {
            return Err(JoinFailure::NotJointFlagged);
        }
        let Some(decoded_header) = SyncHeader::from_bytes(&res.payload) else {
            return Err(JoinFailure::MalformedHeader);
        };
        if decoded_header.packet_id != self.frame.header.packet_id {
            return Err(JoinFailure::WrongPacket {
                expected: self.frame.header.packet_id,
                heard: decoded_header.packet_id,
            });
        }

        // 2. Compensate: estimated ether time of the header's first sample
        // at the lead, minus the measured lead→co propagation delay, plus
        // this slot's offset and the wait time.
        let slot_offset_s = (timeline.training_slot(self.index) as u64 * period) as f64 * 1e-15;
        let target_s = if s.config.delay_compensation {
            let arrival_s = arrival_estimate_s(params, &res.diag, Time::ZERO);
            let Some(d_lead_co) = db.delay_s(s.lead, co) else {
                return Err(JoinFailure::MissingDelay {
                    lead: s.lead,
                    cosender: co,
                });
            };
            arrival_s - d_lead_co + slot_offset_s + plan.wait_s
        } else {
            // Baseline (paper §8.1.2): the co-sender joins "without
            // compensating for delay differences" — it references its raw
            // *detection instant* minus a bench-calibrated mean detection
            // latency (~10 samples for the default detector: ~2 samples of
            // threshold crossing plus half the 16-sample pipeline
            // decimation). The residual misalignment is the per-packet
            // detection variability of [42] (the pipeline phase and the
            // SNR-dependent crossing jitter) plus the uncompensated
            // propagation-delay differences.
            let nominal_detect = 10.0;
            let arrival_raw_s =
                (res.diag.detection.detect_idx as f64 - nominal_detect) * period as f64 * 1e-15;
            arrival_raw_s + slot_offset_s
        };

        // 3. Quantise to this co-sender's sample clock, no earlier than its
        // hardware turnaround allows.
        let detect_time = Time((res.diag.detection.detect_idx as u64) * period);
        let earliest = detect_time + net.node(co).turnaround;
        let tx_time = Time((target_s.max(0.0) * 1e15).round() as u64)
            .round_to_sample(period)
            .max(earliest.ceil_to_sample(period));

        // 4. Build and transmit: training then (after any other co-senders'
        // slots) data, with a continuous CFO pre-rotation.
        let spec = s.config.data_section(timeline.data_cp);
        let mut training = cosender_training(params, &ws.fft, timeline.data_cp);
        let mut data = Vec::new();
        crate::combiner::joint_data_waveform_into(
            params,
            &ws.fft,
            &self.frame.psdu,
            codeword_for(self.index + 1),
            &spec,
            &mut ws.combine_ws,
            &mut data,
        );
        let data_gap_samples = (timeline.data_start() - timeline.training_slot(self.index)) as u64;
        let data_time = Time(tx_time.0 + data_gap_samples * period);
        if s.config.cfo_precorrection {
            // The header detection measured f_lead − f_co at this co-sender;
            // pre-rotating by it moves the co-sender onto the lead's
            // oscillator so the receiver's single CFO correction serves
            // both. The NCO runs continuously across training and data.
            let cfo = res.diag.detection.cfo_hz;
            apply_cfo_from(&mut training, cfo, params.sample_rate_hz, 0.0);
            apply_cfo_from(
                &mut data,
                cfo,
                params.sample_rate_hz,
                data_gap_samples as f64,
            );
        }
        net.medium.transmit(co, tx_time, training);
        net.medium.transmit(co, data_time, data);
        Ok(CosenderTx {
            node: co,
            training_time: tx_time,
            data_time,
            cfo_hz: res.diag.detection.cfo_hz,
        })
    }

    /// [`CosenderJoin::join_with`] plus a [`TraceEventKind::JoinOutcome`]
    /// event (and, on success, spans for the training slot and data
    /// section). Failures are stamped at the end of the sync header — the
    /// instant the co-sender knew it could not join.
    pub fn join_observed<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        db: &DelayDatabase,
        ws: &mut SessionWorkspace,
        trace: &mut TraceRecorder,
        t_base_fs: u64,
    ) -> Result<CosenderTx, JoinFailure> {
        let join = self.join_with(net, rng, db, ws);
        if trace.is_enabled() {
            let co = self.node().0 as u32;
            let period = ws.params.sample_period_fs();
            let tl = &self.frame.timeline;
            let packet = self.frame.header.packet_id;
            let (t_outcome, result) = match &join {
                Ok(tx) => {
                    trace.emit_span(
                        t_base_fs + tx.training_time.0,
                        tl.training_slot_len as u64 * period,
                        co,
                        TraceEventKind::FrameTx {
                            class: FrameClass::Training,
                            bytes: 0,
                            seq: packet,
                            dst: u16::MAX,
                        },
                    );
                    trace.emit_span(
                        t_base_fs + tx.data_time.0,
                        (tl.total_len() - tl.data_start()) as u64 * period,
                        co,
                        TraceEventKind::FrameTx {
                            class: FrameClass::JointData,
                            bytes: self.frame.psdu.len() as u32,
                            seq: packet,
                            dst: u16::MAX,
                        },
                    );
                    (tx.training_time.0, JoinResult::Joined { cfo_hz: tx.cfo_hz })
                }
                Err(failure) => (
                    self.frame.t0.0 + tl.header_len as u64 * period,
                    JoinResult::Failed(failure.class()),
                ),
            };
            trace.emit(
                t_base_fs + t_outcome,
                co,
                TraceEventKind::JoinOutcome {
                    lead: self.frame.header.lead,
                    packet,
                    result,
                },
            );
        }
        join
    }
}

/// One receiver's stage: capture, joint channel estimation, space-time
/// combining, and the §4.5 misalignment measurements.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverDecode<'a> {
    session: &'a JointSession,
    node: NodeId,
    frame: &'a LeadFrame,
}

impl ReceiverDecode<'_> {
    /// The receiver this stage drives.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Captures this receiver's view of the joint frame and decodes it.
    pub fn decode<R: Rng + ?Sized>(&self, net: &mut Network, rng: &mut R) -> ReceiverReport {
        self.decode_with(net, rng, &mut SessionWorkspace::new(net.params.clone()))
    }

    /// [`ReceiverDecode::decode`] through a reusable [`SessionWorkspace`].
    pub fn decode_with<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        ws: &mut SessionWorkspace,
    ) -> ReceiverReport {
        let timeline = &self.frame.timeline;
        let window = CAPTURE_MARGIN * 2 + timeline.total_len() + 400;
        let buf = net.medium.capture(rng, self.node, Time::ZERO, window);
        decode_capture(ws, &buf, self.node, self.frame, &self.session.config)
    }

    /// [`ReceiverDecode::decode_with`] plus a
    /// [`TraceEventKind::JointDecode`] event carrying the combiner
    /// statistics, stamped at the end of the joint frame.
    pub fn decode_observed<R: Rng + ?Sized>(
        &self,
        net: &mut Network,
        rng: &mut R,
        ws: &mut SessionWorkspace,
        trace: &mut TraceRecorder,
        t_base_fs: u64,
    ) -> ReceiverReport {
        let report = self.decode_with(net, rng, ws);
        if trace.is_enabled() {
            let period = ws.params.sample_period_fs();
            let t_end = self.frame.t0.0 + self.frame.timeline.total_len() as u64 * period;
            trace.emit(
                t_base_fs + t_end,
                self.node.0 as u32,
                TraceEventKind::JointDecode {
                    lead: self.frame.header.lead,
                    ok: report.payload.is_some(),
                    evm_snr_db: report.stats.evm_snr_db,
                    mean_gain: report.stats.mean_effective_gain,
                },
            );
        }
        report
    }
}

/// Joint-frame reception from an already-captured buffer.
fn decode_capture(
    ws: &mut SessionWorkspace,
    buf: &[Complex64],
    node: NodeId,
    frame_sched: &LeadFrame,
    cfg: &JointConfig,
) -> ReceiverReport {
    let SessionWorkspace {
        params,
        fft,
        rx,
        rx_ws,
        combine_ws,
        capture_scratch,
        ..
    } = ws;
    // The receiver's common early-window offset (same convention as the
    // phy receiver's default backoff).
    let backoff = params.cp_len / 4;
    let header = &frame_sched.header;
    let timeline = &frame_sched.timeline;
    let n_co = header.n_cosenders as usize;
    let empty = ReceiverReport {
        node,
        header_ok: false,
        payload: None,
        lead_channel: None,
        co_channels: vec![None; n_co],
        measured_misalign_s: vec![None; n_co],
        effective_snr_db: Vec::new(),
        stats: CombinerStats::default(),
    };
    let Ok(res) = rx.receive_with(buf, rx_ws) else {
        return empty;
    };
    if res.signal.flags & frame::FLAG_JOINT == 0 {
        return empty;
    }
    let Some(rx_header) = SyncHeader::from_bytes(&res.payload) else {
        return empty;
    };
    if rx_header.packet_id != header.packet_id {
        return empty;
    }
    let layout = ssync_phy::preamble::PreambleLayout::of(params);
    let Some(base) = res.diag.detection.lts_start.checked_sub(layout.lts_start()) else {
        return empty;
    };
    let period = params.sample_period_fs();

    // CFO-correct a copy referenced to sample 0 (same convention as the
    // phy receiver, so the lead channel estimate stays consistent).
    capture_scratch.clear();
    capture_scratch.extend_from_slice(buf);
    let corrected: &[Complex64] = {
        ssync_dsp::mixer::apply_cfo(
            capture_scratch,
            -res.diag.detection.cfo_hz,
            params.sample_rate_hz,
        );
        capture_scratch
    };

    // Noise floor from the SIFS silence (time domain), for presence checks.
    let sifs_lo = base + timeline.header_len + timeline.sifs_len / 4;
    let sifs_hi = (base + timeline.header_len + 3 * timeline.sifs_len / 4).min(corrected.len());
    let time_noise = if sifs_hi > sifs_lo {
        ssync_dsp::complex::mean_power(&corrected[sifs_lo..sifs_hi])
    } else {
        1.0
    };

    // Per-co-sender channel estimates + misalignment measurements.
    let data_cp = timeline.data_cp;
    let mut co_channels: Vec<Option<ChannelEstimate>> = Vec::with_capacity(n_co);
    let mut misalign: Vec<Option<f64>> = Vec::with_capacity(n_co);
    for i in 0..n_co {
        let slot = base + timeline.training_slot(i);
        // Presence is measured on the central 60 % of the slot: adjacent
        // transmissions (the next slot, or the lead's data section) are
        // band-limited and pre-/post-ring a few samples into neighbouring
        // regions, which must not masquerade as a present co-sender.
        let trim = timeline.training_slot_len / 5;
        let ratio = training_slot_energy_ratio(
            corrected,
            slot + trim,
            timeline.training_slot_len - 2 * trim,
            time_noise,
        );
        if ratio < PRESENCE_THRESHOLD || corrected.len() < slot + timeline.training_slot_len {
            co_channels.push(None);
            misalign.push(None);
            continue;
        }
        let est = estimate_from_training_slot(params, fft, corrected, slot, data_cp, backoff);
        // Misalignment: co-sender's sub-sample offset minus the lead's.
        let delta_co =
            delay_from_slope(params, phase_slope(params, &est, 3e6)) - backoff.min(data_cp) as f64;
        let delta_lead = res.diag.timing_offset_samples;
        misalign.push(Some((delta_co - delta_lead) * period as f64 * 1e-15));
        co_channels.push(Some(est));
    }

    // Fold into role channels and decode the joint data.
    let mut senders: Vec<Option<&ChannelEstimate>> = vec![Some(&res.diag.channel)];
    senders.extend(co_channels.iter().map(|c| c.as_ref()));
    let roles = RoleChannels::from_estimates(params, &senders);
    let effective_snr_db = roles.effective_snr_db();
    let spec = DataSectionSpec {
        rate: rx_header.rate,
        cp_len: data_cp,
        smart_combiner: cfg.smart_combiner,
        pilot_sharing: cfg.pilot_sharing,
    };
    let window = JointDataWindow {
        data_start: base + timeline.data_start(),
        n_syms: timeline.n_data_symbols,
        psdu_len: rx_header.psdu_len as usize,
        backoff,
    };
    let decode = decode_joint_data_with(params, fft, corrected, &window, &spec, &roles, combine_ws);
    let (payload, stats) = match decode {
        Some((psdu, stats)) => {
            let payload = psdu.as_deref().and_then(crc::check_crc).map(|p| p.to_vec());
            (payload, stats)
        }
        None => (None, CombinerStats::default()),
    };

    ReceiverReport {
        node,
        header_ok: true,
        payload,
        lead_channel: Some(res.diag.channel.clone()),
        co_channels,
        measured_misalign_s: misalign,
        effective_snr_db,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssync_channel::Position;
    use ssync_phy::OfdmParams;
    use ssync_sim::ChannelModels;

    fn test_network(seed: u64) -> Network {
        let params = OfdmParams::dot11a();
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(12.0, 0.0),
            Position::new(6.0, 8.0),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(
            &mut rng,
            &params,
            &positions,
            &ChannelModels::clean(&params),
        )
    }

    fn measured_db(net: &mut Network, seed: u64) -> DelayDatabase {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = DelayDatabase::new();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(db.measure_all(net, &mut rng, &nodes, 2));
        db
    }

    fn session(payload: &[u8], wait_s: f64) -> JointSession {
        JointSession::new(NodeId(0))
            .cosender(CosenderPlan {
                node: NodeId(1),
                wait_s,
            })
            .receiver(NodeId(2))
            .payload(payload.to_vec())
            .config(JointConfig::default())
    }

    #[test]
    fn staged_run_matches_monolith_wrapper() {
        // Same seeds through the staged driver and the compatibility
        // wrapper must give bit-identical outcomes.
        let payload: Vec<u8> = (0..180u16).map(|i| (i * 7 % 256) as u8).collect();
        let mut net_a = test_network(21);
        let db_a = measured_db(&mut net_a, 22);
        let sol = db_a
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let staged = session(&payload, sol.waits[0]).run(&mut net_a, &mut rng, &db_a);

        let mut net_b = test_network(21);
        let db_b = measured_db(&mut net_b, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let wrapped = crate::joint::run_joint_transmission(
            &mut net_b,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db_b,
            &JointConfig::default(),
        );
        assert_eq!(
            staged.reports[0].payload, wrapped.reports[0].payload,
            "payloads diverged"
        );
        assert_eq!(staged.true_misalign_s, wrapped.true_misalign_s);
        assert_eq!(staged.co_tx_times, wrapped.co_tx_times);
        assert_eq!(
            staged.reports[0].measured_misalign_s,
            wrapped.reports[0].measured_misalign_s
        );
    }

    #[test]
    fn stages_separately_invoked_deliver() {
        let payload = vec![0x3Au8; 120];
        let mut net = test_network(31);
        let db = measured_db(&mut net, 32);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let s = session(&payload, sol.waits[0]);
        let mut rng = StdRng::seed_from_u64(33);
        let frame = s.lead_tx().transmit(&mut net);
        let join = s.cosender_join(0, &frame).join(&mut net, &mut rng, &db);
        assert!(join.is_ok(), "join failed: {join:?}");
        let report = s
            .receiver_decode(NodeId(2), &frame)
            .decode(&mut net, &mut rng);
        assert!(report.header_ok);
        assert_eq!(report.payload.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn schedule_without_transmit_touches_no_medium() {
        let net = test_network(41);
        let s = session(&[1, 2, 3], 0.0);
        let frame = s.lead_tx().schedule(&net.params);
        assert_eq!(frame.header.packet_id, packet_id(&[1, 2, 3]));
        assert_eq!(
            frame.t0,
            Time((CAPTURE_MARGIN as u64) * net.params.sample_period_fs())
        );
        assert!(frame.timeline.total_len() > frame.timeline.header_len);
    }

    #[test]
    fn missing_delay_is_typed_not_zero() {
        // The co-sender detects the header fine, but the delay database is
        // empty: the join must fail as MissingDelay rather than silently
        // compensating with d = 0.
        let payload = vec![0x11u8; 90];
        let mut net = test_network(51);
        let s = session(&payload, 0.0);
        let empty_db = DelayDatabase::new();
        let mut rng = StdRng::seed_from_u64(52);
        let frame = s.lead_tx().transmit(&mut net);
        let join = s
            .cosender_join(0, &frame)
            .join(&mut net, &mut rng, &empty_db);
        assert_eq!(
            join.unwrap_err(),
            JoinFailure::MissingDelay {
                lead: NodeId(0),
                cosender: NodeId(1),
            }
        );
    }

    #[test]
    fn outcome_carries_per_cosender_diagnostics() {
        let payload = vec![0x22u8; 100];
        let mut net = test_network(61);
        let db = measured_db(&mut net, 62);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(63);
        let out = session(&payload, sol.waits[0]).run(&mut net, &mut rng, &db);
        assert_eq!(out.cosenders.len(), 1);
        assert_eq!(out.cosenders[0].node, NodeId(1));
        let tx = out.cosenders[0].join.as_ref().expect("co-sender joined");
        assert_eq!(Some(tx.training_time), out.co_tx_times[0]);
        assert!(tx.data_time > tx.training_time);
    }

    #[test]
    fn observed_stages_match_unobserved_and_emit_events() {
        let payload = vec![0x3Au8; 120];
        let mut net_a = test_network(71);
        let db_a = measured_db(&mut net_a, 72);
        let sol = db_a
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let s = session(&payload, sol.waits[0]);
        let mut ws = SessionWorkspace::new(net_a.params.clone());
        let mut rng = StdRng::seed_from_u64(73);
        let frame = s.lead_tx().transmit_with(&mut net_a, &mut ws);
        let join = s
            .cosender_join(0, &frame)
            .join_with(&mut net_a, &mut rng, &db_a, &mut ws);
        let report = s
            .receiver_decode(NodeId(2), &frame)
            .decode_with(&mut net_a, &mut rng, &mut ws);

        // Same seeds through the observed wrappers: outcomes must be
        // bit-identical (observation never consumes RNG), with the events
        // riding alongside, offset by the caller's base time.
        let mut net_b = test_network(71);
        let db_b = measured_db(&mut net_b, 72);
        let mut ws_b = SessionWorkspace::new(net_b.params.clone());
        let mut rng = StdRng::seed_from_u64(73);
        let mut trace = TraceRecorder::enabled();
        let base = 5_000_000;
        let frame_b = s
            .lead_tx()
            .transmit_observed(&mut net_b, &mut ws_b, &mut trace, base);
        let join_b = s
            .cosender_join(0, &frame_b)
            .join_observed(&mut net_b, &mut rng, &db_b, &mut ws_b, &mut trace, base);
        let report_b = s
            .receiver_decode(NodeId(2), &frame_b)
            .decode_observed(&mut net_b, &mut rng, &mut ws_b, &mut trace, base);

        assert_eq!(frame_b.t0, frame.t0);
        let tx_a = join.expect("unobserved join");
        let tx_b = join_b.expect("observed join");
        assert_eq!(tx_a.training_time, tx_b.training_time);
        assert_eq!(tx_a.cfo_hz, tx_b.cfo_hz);
        assert_eq!(report.payload, report_b.payload);
        assert_eq!(report.stats.evm_snr_db, report_b.stats.evm_snr_db);

        // 2 lead spans + 2 co-sender spans + join outcome + joint decode.
        let events = trace.merged();
        assert_eq!(events.len(), 6);
        assert!(events.iter().all(|e| e.t_fs >= base));
        assert_eq!(events[0].t_fs, base + frame.t0.0);
        assert!(events.iter().any(|e| matches!(
            e.kind,
            TraceEventKind::JoinOutcome {
                result: JoinResult::Joined { .. },
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::JointDecode { ok, .. } if ok)));
    }

    #[test]
    fn join_failure_classes_are_payload_free() {
        assert_eq!(JoinFailure::NoDetect.class(), JoinFailureClass::NoDetect);
        assert_eq!(
            JoinFailure::WrongPacket {
                expected: 1,
                heard: 2
            }
            .class(),
            JoinFailureClass::WrongPacket
        );
        assert_eq!(
            JoinFailure::MissingDelay {
                lead: NodeId(0),
                cosender: NodeId(1)
            }
            .class(),
            JoinFailureClass::MissingDelay
        );
    }

    #[test]
    fn join_failure_displays_are_informative() {
        let wrong = JoinFailure::WrongPacket {
            expected: 0x1234,
            heard: 0x5678,
        };
        assert!(wrong.to_string().contains("0x1234"));
        assert!(wrong.to_string().contains("0x5678"));
        let missing = JoinFailure::MissingDelay {
            lead: NodeId(0),
            cosender: NodeId(3),
        };
        assert!(missing.to_string().contains("delay-database"));
        assert!(!JoinFailure::NoDetect.to_string().is_empty());
        assert!(!JoinFailure::NotJointFlagged.to_string().is_empty());
        assert!(!JoinFailure::MalformedHeader.to_string().is_empty());
    }
}
