//! The Joint Channel Estimator (paper §5).
//!
//! A joint frame gives the receiver staggered training: the lead sender's
//! standard preamble (in the sync header) and one dedicated training slot
//! per co-sender. From these the receiver estimates each sender's channel
//! *individually*, detects which intended co-senders actually joined
//! (energy in their slot), folds the per-sender channels into the two
//! space-time code *role* channels, and tracks each role's residual
//! frequency offset through the packet via the shared pilots.

use ssync_dsp::{Complex64, FftPlan};
use ssync_phy::chanest::ChannelEstimate;
use ssync_phy::preamble::lts_values;
use ssync_phy::scramble::pilot_polarity;
use ssync_phy::{ofdm, Params};
use ssync_stbc::codebook::codeword_for;
use ssync_stbc::Codeword;

/// Estimates one sender's channel from its two CP-prefixed training symbols
/// (the co-sender slot format), with the receiver's common window backoff.
///
/// `slot_start` is the receiver-buffer index where the slot begins. Returns
/// the estimate plus the measured noise power, exactly like the preamble
/// path in `ssync_phy::chanest`.
pub fn estimate_from_training_slot(
    params: &Params,
    fft: &FftPlan,
    buf: &[Complex64],
    slot_start: usize,
    cp_len: usize,
    backoff: usize,
) -> ChannelEstimate {
    let n = params.fft_size;
    let refs = lts_values(params);
    let sym_len = n + cp_len;
    let b = backoff.min(cp_len);
    let mut grids = Vec::with_capacity(2);
    for rep in 0..2 {
        let offset = slot_start + rep * sym_len + cp_len - b;
        grids.push(ofdm::demodulate_window(params, fft, buf, offset));
    }
    let mut carriers = Vec::with_capacity(refs.len());
    let mut values = Vec::with_capacity(refs.len());
    for &(k, x) in &refs {
        let bin = params.bin(k);
        let avg = (grids[0][bin] + grids[1][bin]).scale(0.5);
        carriers.push(k);
        values.push(avg / Complex64::real(x));
    }
    let mut acc = 0.0;
    for &(k, _) in &refs {
        let bin = params.bin(k);
        acc += (grids[0][bin] - grids[1][bin]).norm_sqr();
    }
    let noise_power = acc / (2.0 * refs.len() as f64);
    ChannelEstimate {
        carriers,
        values,
        noise_power,
    }
}

/// Missing-sender detection (paper §6): a co-sender participated if its
/// training slot holds clearly more energy than the noise floor. Returns
/// the slot's mean power relative to `noise_power` (a ratio; ≥ ~4 is a
/// confident "present").
pub fn training_slot_energy_ratio(
    buf: &[Complex64],
    slot_start: usize,
    slot_len: usize,
    noise_power: f64,
) -> f64 {
    let end = (slot_start + slot_len).min(buf.len());
    if end <= slot_start || noise_power <= 0.0 {
        return 0.0;
    }
    let p = ssync_dsp::complex::mean_power(&buf[slot_start..end]);
    p / noise_power
}

/// Threshold on [`training_slot_energy_ratio`] above which a co-sender is
/// declared present. A slot integrates over ~2 OFDM symbols, so the ratio
/// statistic is tight (σ ≈ (1+SNR)/√n): 1.6 separates "absent" (≈1.0)
/// from even a 0 dB co-sender (≈2.0) by many standard deviations.
pub const PRESENCE_THRESHOLD: f64 = 1.6;

/// The two space-time-code role channels, resolved per subcarrier.
#[derive(Debug, Clone)]
pub struct RoleChannels {
    /// Effective channel of role A (lead + even-indexed co-senders) on each
    /// *data* carrier, in `data_carriers` order.
    pub h_a: Vec<Complex64>,
    /// Effective channel of role B on each data carrier.
    pub h_b: Vec<Complex64>,
    /// Role-A channel on each *pilot* carrier, in `pilot_carriers` order.
    pub h_a_pilot: Vec<Complex64>,
    /// Role-B channel on each pilot carrier.
    pub h_b_pilot: Vec<Complex64>,
    /// Combined noise power for LLR scaling.
    pub noise_power: f64,
}

impl RoleChannels {
    /// Folds per-sender estimates into role channels. `senders[0]` is the
    /// lead; `None` marks a co-sender that did not join. Noise is taken
    /// from the lead estimate (all estimates see the same receiver floor).
    pub fn from_estimates(params: &Params, senders: &[Option<&ChannelEstimate>]) -> RoleChannels {
        assert!(!senders.is_empty(), "need at least the lead sender");
        let noise_power = senders
            .iter()
            .flatten()
            .map(|e| e.noise_power)
            .next()
            .unwrap_or(1.0);
        let gather = |carriers: &[i32]| -> (Vec<Complex64>, Vec<Complex64>) {
            let mut a = vec![Complex64::ZERO; carriers.len()];
            let mut b = vec![Complex64::ZERO; carriers.len()];
            for (idx, est) in senders.iter().enumerate() {
                let Some(est) = est else { continue };
                let dst = match codeword_for(idx) {
                    Codeword::A => &mut a,
                    Codeword::B => &mut b,
                };
                for (j, &k) in carriers.iter().enumerate() {
                    if let Some(g) = est.gain(k) {
                        dst[j] += g;
                    }
                }
            }
            (a, b)
        };
        let (h_a, h_b) = gather(&params.data_carriers);
        let (h_a_pilot, h_b_pilot) = gather(&params.pilot_carriers);
        RoleChannels {
            h_a,
            h_b,
            h_a_pilot,
            h_b_pilot,
            noise_power,
        }
    }

    /// Per-data-carrier effective power gain `|H_A|² + |H_B|²` — the
    /// quantity behind the paper's per-subcarrier SNR plots (Fig. 16).
    pub fn effective_gain(&self) -> Vec<f64> {
        self.h_a
            .iter()
            .zip(&self.h_b)
            .map(|(a, b)| a.norm_sqr() + b.norm_sqr())
            .collect()
    }

    /// Per-data-carrier effective SNR in dB.
    pub fn effective_snr_db(&self) -> Vec<f64> {
        self.effective_gain()
            .into_iter()
            .map(|g| ssync_dsp::stats::db_from_linear(g / self.noise_power.max(1e-15)))
            .collect()
    }
}

/// Residual common phase of one role measured from the pilots of one OFDM
/// symbol grid. In a joint frame role A owns the pilots of even data
/// symbols and role B those of odd ones (paper §5's shared pilots), so
/// callers pass the grid of the symbol the role owns.
pub fn role_pilot_phase(
    params: &Params,
    grid: &[Complex64],
    role_pilots: &[Complex64],
    symbol_index: usize,
) -> f64 {
    let pol = pilot_polarity(symbol_index);
    let mut acc = Complex64::ZERO;
    for (j, &k) in params.pilot_carriers.iter().enumerate() {
        let y = grid[params.bin(k)];
        acc += y * (role_pilots[j] * Complex64::real(pol)).conj();
    }
    acc.arg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssync_dsp::rng::ComplexGaussian;
    use ssync_dsp::Fft;
    use ssync_phy::preamble::cosender_training;
    use ssync_phy::OfdmParams;

    #[test]
    fn training_slot_estimate_recovers_unit_channel() {
        let params = OfdmParams::dot11a();
        let fft = Fft::new(params.fft_size);
        let cp = 20;
        let slot = cosender_training(&params, &fft, cp);
        let mut buf = vec![Complex64::ZERO; 40];
        buf.extend_from_slice(&slot);
        buf.extend(vec![Complex64::ZERO; 40]);
        let est = estimate_from_training_slot(&params, &fft, &buf, 40, cp, 4);
        for v in &est.values {
            // The backoff (4 samples inside the CP) appears as a known phase
            // ramp; magnitudes must be unity.
            assert!((v.abs() - 1.0).abs() < 1e-9, "{v:?}");
        }
        assert!(est.noise_power < 1e-12);
    }

    #[test]
    fn training_slot_estimate_with_noise() {
        let params = OfdmParams::dot11a();
        let fft = Fft::new(params.fft_size);
        let cp = 20;
        let slot = cosender_training(&params, &fft, cp);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = ComplexGaussian::with_power(0.01).sample_vec(&mut rng, slot.len() + 80);
        for (i, s) in slot.iter().enumerate() {
            buf[40 + i] += *s;
        }
        let est = estimate_from_training_slot(&params, &fft, &buf, 40, cp, 4);
        // 20 dB SNR: estimates should be within ~0.2 of unit magnitude.
        for v in &est.values {
            assert!((v.abs() - 1.0).abs() < 0.3, "{v:?}");
        }
        assert!(est.noise_power > 0.0);
    }

    #[test]
    fn energy_ratio_discriminates_presence() {
        let params = OfdmParams::dot11a();
        let fft = Fft::new(params.fft_size);
        let cp = 16;
        let slot = cosender_training(&params, &fft, cp);
        let mut rng = StdRng::seed_from_u64(2);
        let noise_p = 0.05;
        let mut buf = ComplexGaussian::with_power(noise_p).sample_vec(&mut rng, 2 * slot.len());
        for (i, s) in slot.iter().enumerate() {
            buf[i] += *s;
        }
        let present = training_slot_energy_ratio(&buf, 0, slot.len(), noise_p);
        let absent = training_slot_energy_ratio(&buf, slot.len(), slot.len(), noise_p);
        assert!(present > PRESENCE_THRESHOLD, "present ratio {present}");
        assert!(absent < PRESENCE_THRESHOLD, "absent ratio {absent}");
    }

    #[test]
    fn role_channels_fold_by_codeword() {
        let params = OfdmParams::dot11a();
        let mk = |v: Complex64| ChannelEstimate {
            carriers: params.occupied_carriers(),
            values: vec![v; params.occupied_carriers().len()],
            noise_power: 0.01,
        };
        let lead = mk(Complex64::new(1.0, 0.0));
        let co1 = mk(Complex64::new(0.0, 1.0));
        let co2 = mk(Complex64::new(0.5, 0.0));
        let roles = RoleChannels::from_estimates(&params, &[Some(&lead), Some(&co1), Some(&co2)]);
        // Role A = lead + co2 (indices 0 and 2); role B = co1.
        for a in &roles.h_a {
            assert!(a.dist(Complex64::new(1.5, 0.0)) < 1e-12);
        }
        for b in &roles.h_b {
            assert!(b.dist(Complex64::new(0.0, 1.0)) < 1e-12);
        }
        let g = roles.effective_gain();
        assert!((g[0] - (2.25 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn missing_cosender_drops_from_roles() {
        let params = OfdmParams::dot11a();
        let est = ChannelEstimate {
            carriers: params.occupied_carriers(),
            values: vec![Complex64::ONE; params.occupied_carriers().len()],
            noise_power: 0.01,
        };
        let roles = RoleChannels::from_estimates(&params, &[Some(&est), None]);
        for b in &roles.h_b {
            assert_eq!(*b, Complex64::ZERO);
        }
    }

    #[test]
    fn pilot_phase_reads_rotation() {
        let params = OfdmParams::dot11a();
        let role_pilots = vec![Complex64::ONE; params.pilot_carriers.len()];
        let theta = 0.4;
        let mut grid = vec![Complex64::ZERO; params.fft_size];
        let sym_idx = 5;
        let pol = pilot_polarity(sym_idx);
        for &k in &params.pilot_carriers {
            grid[params.bin(k)] = Complex64::from_polar(1.0, theta) * Complex64::real(pol);
        }
        let measured = role_pilot_phase(&params, &grid, &role_pilots, sym_idx);
        assert!((measured - theta).abs() < 1e-9, "measured {measured}");
    }
}
