//! The Symbol-Level Synchronizer (paper §4).
//!
//! Three jobs live here:
//!
//! 1. **Arrival estimation** — turning a receiver's detection + channel
//!    phase slope into a fractional-sample estimate of when a packet's
//!    first sample hit the antenna. This is the mechanism (§4.2(a)) that
//!    stops the jittery, SNR-dependent *detection instant* from polluting
//!    every downstream delay estimate.
//! 2. **The probe/response protocol** (§4.2(c), Eq. 2) — measuring one-way
//!    propagation delays and pairwise carrier-frequency offsets by counting
//!    a round trip and subtracting the responder's self-reported
//!    receive→transmit interval.
//! 3. **Wait-time computation** (§4.3, §4.6) — exact single-receiver waits
//!    `wᵢ = T₀ − tᵢ` or the min-max LP over multiple receivers, plus the
//!    ACK-driven tracking update of §4.5.

use crate::timeline::SIFS_S;
use rand::Rng;
use ssync_linprog::{MisalignmentProblem, WaitSolution};
use ssync_phy::preamble::PreambleLayout;
use ssync_phy::{Receiver, RxDiagnostics, RxResult, Transmitter};
use ssync_sim::{Network, NodeId, Time};
use std::collections::BTreeMap;

/// Estimated ether time (seconds, fractional) at which a received packet's
/// first sample arrived at the antenna, given the capture start time and
/// the receiver diagnostics.
///
/// The integer part comes from the detector's LTS fine timing; the
/// sub-sample part from the channel phase slope (`timing_offset_samples`),
/// so the estimate is immune to the detection-instant jitter.
pub fn arrival_estimate_s(
    params: &ssync_phy::Params,
    diag: &RxDiagnostics,
    capture_start: Time,
) -> f64 {
    let layout_lts = PreambleLayout::of(params).lts_start();
    let samples = diag.detection.lts_start as f64 + diag.timing_offset_samples - layout_lts as f64;
    capture_start.as_secs_f64() + samples * params.sample_period_fs() as f64 * 1e-15
}

/// One probe/response measurement.
#[derive(Debug, Clone, Copy)]
pub struct ProbeOutcome {
    /// Estimated one-way propagation delay, seconds.
    pub delay_s: f64,
    /// Ground-truth one-way delay (from the simulator), seconds.
    pub true_delay_s: f64,
    /// Estimated CFO of the prober as observed by the responder
    /// (`f_prober − f_responder`), Hz.
    pub cfo_hz: f64,
}

/// Margin of noise-only samples captured before an expected packet.
const CAPTURE_MARGIN: usize = 400;

/// Runs one probe/response exchange `a → b → a` on the sample-level medium
/// and estimates the one-way delay per Eq. 2. Returns `None` if either
/// frame fails to decode (the caller retries — probes are cheap).
pub fn probe_pair<R: Rng + ?Sized>(
    net: &mut Network,
    rng: &mut R,
    a: NodeId,
    b: NodeId,
) -> Option<ProbeOutcome> {
    let params = net.params.clone();
    let period = params.sample_period_fs();
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    net.medium.clear_transmissions();

    // A transmits a probe.
    let probe_payload = [0xA5u8; 16];
    let probe_wave = tx.frame_waveform(&probe_payload, crate::timeline::HEADER_RATE, 0);
    let probe_len = probe_wave.len();
    let t0 = Time((CAPTURE_MARGIN as u64) * period);
    net.medium.transmit(a, t0, probe_wave);

    // B captures and decodes.
    let b_window = CAPTURE_MARGIN * 2 + probe_len + 200;
    let b_buf = net.medium.capture(rng, b, Time::ZERO, b_window);
    let b_res: RxResult = rx.receive(&b_buf).ok()?;
    if b_res.payload != probe_payload {
        return None;
    }
    let b_arrival_s = arrival_estimate_s(&params, &b_res.diag, Time::ZERO);
    let b_detect = Time((b_res.diag.detection.detect_idx as u64) * period);

    // B responds after the probe ends plus its hardware turnaround plus a
    // SIFS-like clearance; it reports its receive→transmit interval.
    let turnaround = net.node(b).turnaround;
    let clearance = ssync_sim::Duration::from_secs_f64(SIFS_S);
    let resp_earliest =
        Time((b_arrival_s * 1e15) as u64 + (probe_len as u64) * period) + turnaround + clearance;
    let resp_time = resp_earliest
        .max(b_detect + turnaround)
        .ceil_to_sample(period);
    let rx_to_tx_s = resp_time.as_secs_f64() - b_arrival_s;
    let mut resp_payload = Vec::with_capacity(16);
    resp_payload.extend_from_slice(&rx_to_tx_s.to_le_bytes());
    resp_payload.extend_from_slice(&b_res.diag.detection.cfo_hz.to_le_bytes());
    let resp_wave = tx.frame_waveform(&resp_payload, crate::timeline::HEADER_RATE, 0);
    let resp_len = resp_wave.len();
    net.medium.transmit(b, resp_time, resp_wave);

    // A captures the response. Scan from after its own transmission ended.
    let a_from = t0 + ssync_sim::Duration((probe_len as u64) * period);
    let a_window =
        resp_time.saturating_since(a_from).0 as usize / period as usize + resp_len + CAPTURE_MARGIN;
    let a_buf = net.medium.capture(rng, a, a_from, a_window);
    let a_res = rx.receive(&a_buf).ok()?;
    let reported_rx_to_tx = f64::from_le_bytes(a_res.payload.get(0..8)?.try_into().ok()?);
    let reported_cfo = f64::from_le_bytes(a_res.payload.get(8..16)?.try_into().ok()?);
    let a_arrival_s = arrival_estimate_s(&params, &a_res.diag, a_from);

    // Eq. 2 rearranged: RTT = 2·d + (responder's rx→tx interval).
    let rtt_s = a_arrival_s - t0.as_secs_f64();
    let delay_s = (rtt_s - reported_rx_to_tx) / 2.0;
    net.medium.clear_transmissions();
    Some(ProbeOutcome {
        delay_s,
        true_delay_s: net.true_delay_s(a, b),
        cfo_hz: reported_cfo,
    })
}

/// The measurement database SourceSync nodes build by exchanging periodic
/// probes (§4.3: co-senders need lead→co, lead→rx and co→rx delays).
#[derive(Debug, Default, Clone)]
pub struct DelayDatabase {
    /// Estimated one-way delay per unordered pair, seconds. BTreeMap for
    /// canonical iteration order (determinism contract, `nondet-iteration`).
    delays_s: BTreeMap<(usize, usize), f64>,
    /// Estimated CFO `f_x − f_y` per ordered pair, Hz.
    cfo_hz: BTreeMap<(usize, usize), f64>,
}

impl DelayDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures the pair `(a, b)` with `n_probes` exchanges (averaging) and
    /// stores the result. Returns `false` if every probe failed.
    pub fn measure<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        a: NodeId,
        b: NodeId,
        n_probes: usize,
    ) -> bool {
        let mut delays = Vec::new();
        let mut cfos = Vec::new();
        for _ in 0..n_probes {
            if let Some(p) = probe_pair(net, rng, a, b) {
                delays.push(p.delay_s);
                cfos.push(p.cfo_hz);
            }
        }
        if delays.is_empty() {
            return false;
        }
        self.set_delay(a, b, ssync_dsp::stats::mean(&delays));
        self.cfo_hz
            .insert((a.0, b.0), ssync_dsp::stats::mean(&cfos));
        self.cfo_hz
            .insert((b.0, a.0), -ssync_dsp::stats::mean(&cfos));
        true
    }

    /// Measures every pair among `nodes`.
    pub fn measure_all<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        nodes: &[NodeId],
        n_probes: usize,
    ) -> bool {
        let mut ok = true;
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                ok &= self.measure(net, rng, nodes[i], nodes[j], n_probes);
            }
        }
        ok
    }

    /// Installs a delay directly (tests, or oracle-delay ablations).
    pub fn set_delay(&mut self, a: NodeId, b: NodeId, delay_s: f64) {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.delays_s.insert(key, delay_s);
    }

    /// The stored one-way delay between two nodes, seconds.
    pub fn delay_s(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.delays_s.get(&(a.0.min(b.0), a.0.max(b.0))).copied()
    }

    /// The stored CFO `f_a − f_b`, Hz.
    pub fn cfo_hz(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.cfo_hz.get(&(a.0, b.0)).copied()
    }

    /// Wait times for a joint transmission (§4.3 / §4.6): solves the
    /// min-max misalignment LP over all receivers (which reduces to
    /// `wᵢ = T₀ − tᵢ` exactly for a single receiver). Returns `None` if any
    /// needed delay is missing from the database.
    pub fn wait_solution(
        &self,
        lead: NodeId,
        cosenders: &[NodeId],
        receivers: &[NodeId],
    ) -> Option<WaitSolution> {
        let lead_delays: Option<Vec<f64>> =
            receivers.iter().map(|r| self.delay_s(lead, *r)).collect();
        let cosender_delays: Option<Vec<Vec<f64>>> = cosenders
            .iter()
            .map(|c| receivers.iter().map(|r| self.delay_s(*c, *r)).collect())
            .collect();
        let problem = MisalignmentProblem {
            lead_delays: lead_delays?,
            cosender_delays: cosender_delays?,
        };
        Some(problem.solve())
    }
}

/// The §4.5 tracking update: the receiver's ACK reports the measured
/// misalignment of a co-sender relative to the lead (positive = co-sender
/// arrived late); the co-sender shifts its wait accordingly.
pub fn tracking_update(current_wait_s: f64, measured_misalignment_s: f64) -> f64 {
    current_wait_s - measured_misalignment_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssync_channel::Position;
    use ssync_phy::OfdmParams;
    use ssync_sim::ChannelModels;

    fn line_network(seed: u64, spacing_m: f64) -> Network {
        let params = OfdmParams::dot11a();
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(spacing_m, 0.0),
            Position::new(spacing_m / 2.0, 6.0),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(
            &mut rng,
            &params,
            &positions,
            &ChannelModels::clean(&params),
        )
    }

    #[test]
    fn probe_estimates_real_delay_within_a_nanosecond() {
        let mut net = line_network(1, 12.0);
        let mut rng = StdRng::seed_from_u64(2);
        let p = probe_pair(&mut net, &mut rng, NodeId(0), NodeId(1)).expect("probe failed");
        // 12 m = 40 ns of flight.
        assert!((p.true_delay_s - 40e-9).abs() < 0.5e-9);
        assert!(
            (p.delay_s - p.true_delay_s).abs() < 2e-9,
            "estimate {} vs truth {}",
            p.delay_s,
            p.true_delay_s
        );
    }

    #[test]
    fn probe_recovers_cfo_sign_and_magnitude() {
        let mut net = line_network(3, 8.0);
        let true_cfo = net.medium.link(NodeId(0), NodeId(1)).unwrap().cfo_hz;
        let mut rng = StdRng::seed_from_u64(4);
        let p = probe_pair(&mut net, &mut rng, NodeId(0), NodeId(1)).expect("probe failed");
        assert!(
            (p.cfo_hz - true_cfo).abs() < 1500.0,
            "estimated {} vs true {true_cfo}",
            p.cfo_hz
        );
    }

    #[test]
    fn database_measures_and_solves_waits() {
        let mut net = line_network(5, 15.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut db = DelayDatabase::new();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(db.measure_all(&mut net, &mut rng, &nodes, 2));
        // Lead 0, co-sender 1, receiver 2: single receiver → perfect waits.
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        assert!(sol.max_misalignment < 1e-12);
        let expect =
            db.delay_s(NodeId(0), NodeId(2)).unwrap() - db.delay_s(NodeId(1), NodeId(2)).unwrap();
        assert!((sol.waits[0] - expect).abs() < 1e-12);
        // And the estimated delays are close to geometric truth.
        assert!(
            (db.delay_s(NodeId(0), NodeId(1)).unwrap() - net.true_delay_s(NodeId(0), NodeId(1)))
                .abs()
                < 2e-9
        );
    }

    #[test]
    fn wait_solution_missing_delay_is_none() {
        let db = DelayDatabase::new();
        assert!(db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .is_none());
    }

    #[test]
    fn tracking_update_cancels_reported_error() {
        // Co-sender arrives 30 ns late → wait shrinks by 30 ns.
        let w = tracking_update(100e-9, 30e-9);
        assert!((w - 70e-9).abs() < 1e-15);
        // Arriving early (negative misalignment) grows the wait.
        let w2 = tracking_update(100e-9, -10e-9);
        assert!((w2 - 110e-9).abs() < 1e-15);
    }

    #[test]
    fn set_delay_is_symmetric() {
        let mut db = DelayDatabase::new();
        db.set_delay(NodeId(3), NodeId(7), 55e-9);
        assert_eq!(db.delay_s(NodeId(7), NodeId(3)), Some(55e-9));
    }
}
