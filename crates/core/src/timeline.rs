//! The joint-frame timeline (paper Figs. 6–7).
//!
//! All offsets are in *samples relative to the first sample of the sync
//! header at the lead sender's antenna*. The global time reference (§4.3)
//! is the instant `SIFS` after the sync header ends; co-sender training
//! slots and the joint data section are laid out after it. Every sender
//! computes its own transmit instant by shifting this schedule by its wait
//! time; every receiver computes its receive windows by shifting it by the
//! estimated lead-sender arrival.

use ssync_phy::{frame, preamble, Params, RateId};
use ssync_sim::Duration;

/// 802.11 SIFS (10 µs in 802.11 g/n, which the paper uses as the switching
/// allowance).
pub const SIFS_S: f64 = 10e-6;

/// The computed layout of one joint frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointTimeline {
    /// Samples in the sync-header frame (preamble + SIGNAL + header PSDU).
    pub header_len: usize,
    /// Samples of silence after the header (SIFS on the sample grid).
    pub sifs_len: usize,
    /// Samples in one co-sender training slot (2 CP-prefixed LTS symbols at
    /// the extended CP).
    pub training_slot_len: usize,
    /// Number of co-sender training slots.
    pub n_cosenders: usize,
    /// Data cyclic-prefix length (base + extension), samples.
    pub data_cp: usize,
    /// Number of joint data OFDM symbols on the air (even: padded for the
    /// space-time code).
    pub n_data_symbols_on_air: usize,
    /// Number of *meaningful* data symbols (before STBC padding).
    pub n_data_symbols: usize,
    /// FFT size (cached for offset arithmetic).
    fft_size: usize,
}

impl JointTimeline {
    /// Computes the timeline for a joint frame.
    pub fn new(
        params: &Params,
        psdu_len: usize,
        rate: RateId,
        cp_extension: usize,
        n_cosenders: usize,
    ) -> Self {
        let header_psdu = crate::wire::SYNC_HEADER_LEN + 4; // + CRC32
        let layout = preamble::PreambleLayout::of(params);
        let sym = params.symbol_len();
        let header_len = layout.total_len()
            + frame::n_signal_symbols(params) * sym
            + frame::n_data_symbols(params, header_psdu, HEADER_RATE) * sym;
        let sample_period = params.sample_period_fs();
        let sifs_len = Duration::from_secs_f64(SIFS_S).0.div_ceil(sample_period) as usize;
        let data_cp = params.cp_len + cp_extension;
        let training_slot_len = preamble::cosender_training_len(params, data_cp);
        let n_data_symbols = frame::n_data_symbols(params, psdu_len, rate);
        let n_data_symbols_on_air = n_data_symbols + n_data_symbols % 2;
        JointTimeline {
            header_len,
            sifs_len,
            training_slot_len,
            n_cosenders,
            data_cp,
            n_data_symbols_on_air,
            n_data_symbols,
            fft_size: params.fft_size,
        }
    }

    /// Offset of the global time reference: end of header + SIFS.
    pub fn global_reference(&self) -> usize {
        self.header_len + self.sifs_len
    }

    /// Offset of co-sender `i`'s training slot (0-based).
    ///
    /// # Panics
    /// Panics if `i >= n_cosenders`.
    pub fn training_slot(&self, i: usize) -> usize {
        assert!(
            i < self.n_cosenders,
            "co-sender {i} of {}",
            self.n_cosenders
        );
        self.global_reference() + i * self.training_slot_len
    }

    /// Offset of the first joint data symbol.
    pub fn data_start(&self) -> usize {
        self.global_reference() + self.n_cosenders * self.training_slot_len
    }

    /// Offset of data symbol `s`.
    pub fn data_symbol(&self, s: usize) -> usize {
        self.data_start() + s * (self.fft_size + self.data_cp)
    }

    /// Total on-air samples of the whole joint frame.
    pub fn total_len(&self) -> usize {
        self.data_symbol(self.n_data_symbols_on_air)
    }

    /// Synchronization overhead: the fraction of the frame spent on SIFS
    /// and co-sender training (the quantity of the paper's §4.4 example:
    /// 1.7 % for two senders at 12 Mbps / 1460 B).
    pub fn sync_overhead(&self) -> f64 {
        let overhead = self.sifs_len + self.n_cosenders * self.training_slot_len;
        overhead as f64 / self.total_len() as f64
    }
}

/// The rate the sync header itself is sent at (most robust).
pub const HEADER_RATE: RateId = RateId::R6;

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_phy::OfdmParams;

    #[test]
    fn layout_is_ordered_and_contiguous() {
        let params = OfdmParams::wiglan();
        let t = JointTimeline::new(&params, 500, RateId::R12, 10, 2);
        assert!(t.header_len > 0);
        assert_eq!(t.global_reference(), t.header_len + t.sifs_len);
        assert_eq!(t.training_slot(0), t.global_reference());
        assert_eq!(
            t.training_slot(1),
            t.global_reference() + t.training_slot_len
        );
        assert_eq!(t.data_start(), t.training_slot(1) + t.training_slot_len);
        assert!(t.total_len() > t.data_start());
    }

    #[test]
    fn sifs_on_sample_grid_matches_10us() {
        let params = OfdmParams::dot11a();
        let t = JointTimeline::new(&params, 100, RateId::R6, 0, 1);
        // 10 µs at 20 Msps = 200 samples.
        assert_eq!(t.sifs_len, 200);
        let params = OfdmParams::wiglan();
        let t = JointTimeline::new(&params, 100, RateId::R6, 0, 1);
        // 10 µs at 128 Msps = 1280 samples.
        assert_eq!(t.sifs_len, 1280);
    }

    #[test]
    fn data_symbols_padded_to_pairs() {
        let params = OfdmParams::dot11a();
        // Find a psdu length with an odd symbol count.
        let mut odd_len = None;
        for len in 10..200 {
            if ssync_phy::frame::n_data_symbols(&params, len, RateId::R12) % 2 == 1 {
                odd_len = Some(len);
                break;
            }
        }
        let len = odd_len.expect("some odd symbol count exists");
        let t = JointTimeline::new(&params, len, RateId::R12, 0, 1);
        assert_eq!(t.n_data_symbols_on_air, t.n_data_symbols + 1);
        assert_eq!(t.n_data_symbols_on_air % 2, 0);
    }

    #[test]
    fn cp_extension_lengthens_symbols() {
        let params = OfdmParams::wiglan();
        let base = JointTimeline::new(&params, 500, RateId::R12, 0, 1);
        let ext = JointTimeline::new(&params, 500, RateId::R12, 20, 1);
        assert_eq!(ext.data_cp, base.data_cp + 20);
        assert!(ext.total_len() > base.total_len());
        assert_eq!(
            ext.data_symbol(1) - ext.data_symbol(0),
            params.fft_size + params.cp_len + 20
        );
    }

    #[test]
    fn paper_overhead_example_ballpark() {
        // Paper §4.4: 1460-byte packets at 12 Mbps — overhead 1.7 % for two
        // concurrent senders (1 co-sender), 2.8 % for five (4 co-senders).
        // Our frame layout differs in detail (SIGNAL length, CP'd training),
        // so allow a generous band around the paper's numbers.
        let params = OfdmParams::dot11a();
        let two = JointTimeline::new(&params, 1464, RateId::R12, 0, 1);
        let five = JointTimeline::new(&params, 1464, RateId::R12, 0, 4);
        assert!(
            (0.008..0.035).contains(&two.sync_overhead()),
            "two-sender overhead {}",
            two.sync_overhead()
        );
        assert!(
            (0.02..0.06).contains(&five.sync_overhead()),
            "five-sender overhead {}",
            five.sync_overhead()
        );
        assert!(five.sync_overhead() > two.sync_overhead());
    }

    #[test]
    #[should_panic(expected = "co-sender 2 of 2")]
    fn slot_bounds_checked() {
        let params = OfdmParams::dot11a();
        let t = JointTimeline::new(&params, 100, RateId::R6, 0, 2);
        let _ = t.training_slot(2);
    }
}
