//! The synchronization-header payload (paper §4.4).
//!
//! The lead sender's sync header is an ordinary PHY frame (standard
//! preamble usable for detection and channel estimation) whose SIGNAL
//! flags carry [`ssync_phy::frame::FLAG_JOINT`] and whose payload encodes:
//! the lead sender identifier, a 16-bit packet identifier (so co-senders
//! can check they hold the packet being transmitted), the data rate and
//! length of the joint data section, the advertised cyclic-prefix extension
//! (§4.6), and the co-sender count.

use ssync_phy::RateId;

/// Decoded synchronization-header contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncHeader {
    /// The lead sender's node id.
    pub lead: u16,
    /// 16-bit packet identifier (paper: a hash of IP src/dst/id; here the
    /// caller provides any stable hash of the payload).
    pub packet_id: u16,
    /// Rate of the joint data section.
    pub rate: RateId,
    /// PSDU length of the joint data section, bytes.
    pub psdu_len: u16,
    /// Cyclic-prefix extension for the data symbols, in samples over the
    /// numerology's base CP.
    pub cp_extension: u8,
    /// Number of co-sender training slots that follow.
    pub n_cosenders: u8,
}

/// Serialised size in bytes.
pub const SYNC_HEADER_LEN: usize = 9;

impl SyncHeader {
    /// Serialises to the 9-byte wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SYNC_HEADER_LEN);
        out.extend_from_slice(&self.lead.to_le_bytes());
        out.extend_from_slice(&self.packet_id.to_le_bytes());
        out.push(self.rate.to_index());
        out.extend_from_slice(&self.psdu_len.to_le_bytes());
        out.push(self.cp_extension);
        out.push(self.n_cosenders);
        out
    }

    /// Parses the wire form; `None` on truncation or an unknown rate.
    pub fn from_bytes(bytes: &[u8]) -> Option<SyncHeader> {
        if bytes.len() < SYNC_HEADER_LEN {
            return None;
        }
        Some(SyncHeader {
            lead: u16::from_le_bytes([bytes[0], bytes[1]]),
            packet_id: u16::from_le_bytes([bytes[2], bytes[3]]),
            rate: RateId::from_index(bytes[4])?,
            psdu_len: u16::from_le_bytes([bytes[5], bytes[6]]),
            cp_extension: bytes[7],
            n_cosenders: bytes[8],
        })
    }
}

/// The 16-bit packet identifier used in sync headers: an FNV-1a hash folded
/// to 16 bits (stands in for the paper's IP-header hash).
pub fn packet_id(payload: &[u8]) -> u16 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    ((h >> 16) ^ (h & 0xFFFF)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SyncHeader {
        SyncHeader {
            lead: 3,
            packet_id: 0xBEEF,
            rate: RateId::R12,
            psdu_len: 1464,
            cp_extension: 17,
            n_cosenders: 2,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), SYNC_HEADER_LEN);
        assert_eq!(SyncHeader::from_bytes(&bytes), Some(h));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..SYNC_HEADER_LEN {
            assert_eq!(SyncHeader::from_bytes(&bytes[..cut]), None);
        }
    }

    #[test]
    fn unknown_rate_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 200;
        assert_eq!(SyncHeader::from_bytes(&bytes), None);
    }

    #[test]
    fn extra_bytes_tolerated() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xFF);
        assert_eq!(SyncHeader::from_bytes(&bytes), Some(sample()));
    }

    #[test]
    fn packet_id_distinguishes_payloads() {
        let a = packet_id(b"payload one");
        let b = packet_id(b"payload two");
        assert_ne!(a, b);
        assert_eq!(packet_id(b"payload one"), a);
    }
}
