//! The joint-transmission protocol types and the one-call compatibility
//! driver (paper §4.4, Figs. 6–7).
//!
//! The protocol itself lives in [`crate::session`] as the staged
//! [`JointSession`] API — per-role stages
//! (`LeadTx`, `CosenderJoin`, `ReceiverDecode`) that can be invoked
//! separately over the sample-level medium. This module keeps:
//!
//! * the shared vocabulary — [`JointConfig`], [`CosenderPlan`],
//!   [`ReceiverReport`], [`JointOutcome`];
//! * [`run_joint_transmission`], a thin wrapper that builds a session and
//!   runs all stages in protocol order. Its outputs are byte-identical to
//!   the historical monolithic driver, which is what the figure
//!   reproductions and golden tests pin.
//!
//! One call to [`run_joint_transmission`] plays out an entire joint frame:
//!
//! 1. the lead sender transmits the sync header, then goes silent for a
//!    SIFS plus the co-sender training slots, then transmits its
//!    space-time-coded data;
//! 2. each co-sender *detects* the header in its own noisy capture,
//!    estimates the header's arrival with the phase-slope machinery,
//!    subtracts the measured lead→co propagation delay, adds its wait
//!    time, quantises to its sample clock, and transmits its training and
//!    data — all the compensation steps of §4.3;
//! 3. each receiver detects the header, estimates every sender's channel,
//!    checks which co-senders actually joined, combines the space-time
//!    coded data, and measures the residual lead/co misalignment that an
//!    ACK would feed back (§4.5).
//!
//! The returned [`JointOutcome`] carries the receivers' *measured*
//! misalignments, the simulator's exact ground truth (what the Fig. 12
//! synchronization-error experiment compares), and — through the session
//! redesign — a typed per-co-sender join diagnostic
//! ([`CosenderOutcome`]).

use crate::combiner::{CombinerStats, DataSectionSpec};
use crate::session::{CosenderOutcome, JointSession};
use crate::sls::DelayDatabase;
use rand::Rng;
use ssync_phy::chanest::ChannelEstimate;
use ssync_phy::RateId;
use ssync_sim::{Network, NodeId, Time};

/// Knobs of a joint transmission (the `false` settings are the ablation
/// baselines the paper argues against).
#[derive(Debug, Clone, Copy)]
pub struct JointConfig {
    /// Data-section rate.
    pub rate: RateId,
    /// Cyclic-prefix extension in samples (§4.6; 0 for single-receiver).
    pub cp_extension: usize,
    /// Space-time-code the data (Smart Combiner, §6). `false` = all
    /// senders transmit identical symbols.
    pub smart_combiner: bool,
    /// Share pilots across senders (§5). `false` = everyone drives pilots.
    pub pilot_sharing: bool,
    /// Pre-rotate co-sender waveforms by the lead-relative CFO measured
    /// from the sync header (§5).
    pub cfo_precorrection: bool,
    /// Compensate propagation/detection delays (§4.3). `false` = the
    /// Fig. 13 baseline: co-senders join on their raw header timing.
    pub delay_compensation: bool,
}

impl Default for JointConfig {
    fn default() -> Self {
        JointConfig {
            rate: RateId::R12,
            cp_extension: 0,
            smart_combiner: true,
            pilot_sharing: true,
            cfo_precorrection: true,
            delay_compensation: true,
        }
    }
}

impl JointConfig {
    /// The data-section coding spec at the frame's extended CP
    /// (`data_cp` = base CP + `cp_extension`, from the
    /// [`JointTimeline`](crate::timeline::JointTimeline)).
    pub fn data_section(&self, data_cp: usize) -> DataSectionSpec {
        DataSectionSpec {
            rate: self.rate,
            cp_len: data_cp,
            smart_combiner: self.smart_combiner,
            pilot_sharing: self.pilot_sharing,
        }
    }
}

/// A co-sender's role in one joint transmission.
#[derive(Debug, Clone, Copy)]
pub struct CosenderPlan {
    /// The co-sender node.
    pub node: NodeId,
    /// Its wait time `wᵢ` relative to the global reference, seconds
    /// (from [`DelayDatabase::wait_solution`] or §4.5 tracking).
    pub wait_s: f64,
}

/// What one receiver saw of the joint frame.
#[derive(Debug, Clone)]
pub struct ReceiverReport {
    /// The receiver node.
    pub node: NodeId,
    /// Whether the sync header decoded (detection + SIGNAL + CRC).
    pub header_ok: bool,
    /// The CRC-checked payload, if the joint data decoded.
    pub payload: Option<Vec<u8>>,
    /// Lead-sender channel estimate (from the header preamble).
    pub lead_channel: Option<ChannelEstimate>,
    /// Per-co-sender channel estimates (`None` = absent or header failed).
    pub co_channels: Vec<Option<ChannelEstimate>>,
    /// Measured misalignment of each co-sender vs the lead, seconds
    /// (positive = co-sender late) — the §4.5 ACK feedback value.
    pub measured_misalign_s: Vec<Option<f64>>,
    /// Per-data-carrier effective SNR (dB) of the composite channel.
    pub effective_snr_db: Vec<f64>,
    /// Combiner statistics (effective gain, EVM).
    pub stats: CombinerStats,
}

/// Outcome of one joint transmission.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// One report per requested receiver.
    pub reports: Vec<ReceiverReport>,
    /// Ground truth: actual data-section arrival misalignment of each
    /// co-sender vs the lead at each receiver, seconds (`[rx][co]`).
    pub true_misalign_s: Vec<Vec<f64>>,
    /// Ether times at which each co-sender began its training transmission
    /// (diagnostics; `outcome.cosenders` carries the full per-co-sender
    /// record, including the typed reason when a co-sender stayed silent).
    pub co_tx_times: Vec<Option<Time>>,
    /// Per-co-sender join diagnostics, in plan order: the transmission
    /// record of each joined co-sender, or the typed
    /// [`JoinFailure`](crate::session::JoinFailure) of each that did not.
    pub cosenders: Vec<CosenderOutcome>,
}

impl JointOutcome {
    /// How many co-senders actually transmitted.
    pub fn joined_count(&self) -> usize {
        self.cosenders.iter().filter(|c| c.joined()).count()
    }

    /// The co-senders that stayed silent, with their typed reasons.
    pub fn join_failures(
        &self,
    ) -> impl Iterator<Item = (NodeId, crate::session::JoinFailure)> + '_ {
        self.cosenders
            .iter()
            .filter_map(|c| c.join.as_ref().err().map(|e| (c.node, *e)))
    }
}

/// Runs one complete joint transmission — a thin compatibility wrapper
/// that assembles a [`JointSession`] and drives all of its stages in
/// protocol order. See the module docs for the walkthrough; see
/// [`crate::session`] to drive the stages individually.
#[allow(clippy::too_many_arguments)] // historical signature, kept byte-compatible
pub fn run_joint_transmission<R: Rng + ?Sized>(
    net: &mut Network,
    rng: &mut R,
    lead: NodeId,
    plans: &[CosenderPlan],
    receivers: &[NodeId],
    payload: &[u8],
    db: &DelayDatabase,
    cfg: &JointConfig,
) -> JointOutcome {
    JointSession::new(lead)
        .cosenders(plans.iter().copied())
        .receivers(receivers.iter().copied())
        .payload(payload)
        .config(*cfg)
        .run(net, rng, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssync_channel::Position;
    use ssync_phy::OfdmParams;
    use ssync_sim::ChannelModels;

    /// Lead at origin, co-sender 12 m east, receiver 10 m north-east-ish.
    fn test_network(seed: u64) -> Network {
        let params = OfdmParams::dot11a();
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(12.0, 0.0),
            Position::new(6.0, 8.0),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(
            &mut rng,
            &params,
            &positions,
            &ChannelModels::clean(&params),
        )
    }

    fn measured_db(net: &mut Network, seed: u64) -> DelayDatabase {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = DelayDatabase::new();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(db.measure_all(net, &mut rng, &nodes, 2));
        db
    }

    #[test]
    fn end_to_end_joint_frame_decodes() {
        let mut net = test_network(1);
        let db = measured_db(&mut net, 2);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let payload: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &JointConfig::default(),
        );
        let report = &out.reports[0];
        assert!(report.header_ok, "header failed");
        assert!(report.co_channels[0].is_some(), "co-sender not seen");
        assert_eq!(
            report.payload.as_deref(),
            Some(&payload[..]),
            "joint data failed"
        );
        // Synchronization: the residual misalignment should be within a few
        // sample periods (< 3 samples at 20 Msps = 150 ns for this coarse
        // numerology; the wiglan preset tightens this in the benches).
        let truth = out.true_misalign_s[0][0];
        assert!(truth.is_finite());
        assert!(truth.abs() < 150e-9, "true misalignment {truth}");
        // The measured misalignment should agree with the truth reasonably.
        let measured = report.measured_misalign_s[0].expect("no measurement");
        assert!(
            (measured - truth).abs() < 60e-9,
            "measured {measured} vs truth {truth}"
        );
        // The session diagnostics agree with the legacy fields.
        assert_eq!(out.joined_count(), 1);
        assert_eq!(out.join_failures().count(), 0);
    }

    #[test]
    fn uncompensated_baseline_is_worse() {
        let mut net = test_network(4);
        let db = measured_db(&mut net, 5);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let payload = vec![0x42u8; 100];

        let mut rng = StdRng::seed_from_u64(6);
        let sync_out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &JointConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(6);
        let base_cfg = JointConfig {
            delay_compensation: false,
            ..Default::default()
        };
        let base_out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: 0.0,
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &base_cfg,
        );
        let sync_mis = sync_out.true_misalign_s[0][0].abs();
        let base_mis = base_out.true_misalign_s[0][0].abs();
        assert!(
            sync_mis < base_mis,
            "SourceSync {sync_mis} not tighter than baseline {base_mis}"
        );
    }

    #[test]
    fn lone_lead_when_cosender_misses_header() {
        // Give the co-sender no link from the lead by placing it absurdly
        // far: it will fail to decode and stay silent; the receiver must
        // still decode the lead alone.
        let params = OfdmParams::dot11a();
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(2000.0, 0.0), // unreachable co-sender
            Position::new(6.0, 8.0),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Network::build(
            &mut rng,
            &params,
            &positions,
            &ChannelModels::clean(&params),
        );
        let db = DelayDatabase::new(); // empty: co never joins anyway
        let payload = vec![0x77u8; 150];
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: 0.0,
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &JointConfig::default(),
        );
        let report = &out.reports[0];
        assert!(report.header_ok);
        assert!(report.co_channels[0].is_none(), "ghost co-sender");
        assert_eq!(
            report.payload.as_deref(),
            Some(&payload[..]),
            "lone lead failed"
        );
        assert!(out.true_misalign_s[0][0].is_nan());
        // And the failure is typed, not silent.
        assert_eq!(out.joined_count(), 0);
        let failures: Vec<_> = out.join_failures().collect();
        assert_eq!(
            failures,
            vec![(NodeId(1), crate::session::JoinFailure::NoDetect)]
        );
    }

    #[test]
    fn effective_snr_reported_per_carrier() {
        let mut net = test_network(8);
        let db = measured_db(&mut net, 9);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &[1, 2, 3, 4],
            &db,
            &JointConfig::default(),
        );
        let report = &out.reports[0];
        assert_eq!(report.effective_snr_db.len(), 48);
        assert!(report.stats.mean_effective_gain > 0.0);
    }
}
