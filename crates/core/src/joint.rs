//! The full joint-transmission protocol (paper §4.4, Figs. 6–7), driven
//! over the sample-level medium.
//!
//! One call to [`run_joint_transmission`] plays out an entire joint frame:
//!
//! 1. the lead sender transmits the sync header, then goes silent for a
//!    SIFS plus the co-sender training slots, then transmits its
//!    space-time-coded data;
//! 2. each co-sender *detects* the header in its own noisy capture,
//!    estimates the header's arrival with the phase-slope machinery,
//!    subtracts the measured lead→co propagation delay, adds its wait
//!    time, quantises to its sample clock, and transmits its training and
//!    data — all the compensation steps of §4.3;
//! 3. each receiver detects the header, estimates every sender's channel,
//!    checks which co-senders actually joined, combines the space-time
//!    coded data, and measures the residual lead/co misalignment that an
//!    ACK would feed back (§4.5).
//!
//! The returned [`JointOutcome`] carries both the receivers' *measured*
//! misalignments and the simulator's exact ground truth, which is what the
//! Fig. 12 synchronization-error experiment compares.

use crate::combiner::{decode_joint_data, joint_data_waveform, CombinerStats};
use crate::jce::{
    estimate_from_training_slot, training_slot_energy_ratio, RoleChannels, PRESENCE_THRESHOLD,
};
use crate::sls::{arrival_estimate_s, DelayDatabase};
use crate::timeline::{JointTimeline, HEADER_RATE};
use crate::wire::{packet_id, SyncHeader};
use rand::Rng;
use ssync_dsp::mixer::apply_cfo_from;
use ssync_dsp::{Complex64, Fft};
use ssync_phy::chanest::{delay_from_slope, phase_slope, ChannelEstimate};
use ssync_phy::preamble::cosender_training;
use ssync_phy::{crc, frame, Params, RateId, Receiver, Transmitter};
use ssync_sim::{Network, NodeId, Time};
use ssync_stbc::codebook::codeword_for;

/// Knobs of a joint transmission (the `false` settings are the ablation
/// baselines the paper argues against).
#[derive(Debug, Clone, Copy)]
pub struct JointConfig {
    /// Data-section rate.
    pub rate: RateId,
    /// Cyclic-prefix extension in samples (§4.6; 0 for single-receiver).
    pub cp_extension: usize,
    /// Space-time-code the data (Smart Combiner, §6). `false` = all
    /// senders transmit identical symbols.
    pub smart_combiner: bool,
    /// Share pilots across senders (§5). `false` = everyone drives pilots.
    pub pilot_sharing: bool,
    /// Pre-rotate co-sender waveforms by the lead-relative CFO measured
    /// from the sync header (§5).
    pub cfo_precorrection: bool,
    /// Compensate propagation/detection delays (§4.3). `false` = the
    /// Fig. 13 baseline: co-senders join on their raw header timing.
    pub delay_compensation: bool,
}

impl Default for JointConfig {
    fn default() -> Self {
        JointConfig {
            rate: RateId::R12,
            cp_extension: 0,
            smart_combiner: true,
            pilot_sharing: true,
            cfo_precorrection: true,
            delay_compensation: true,
        }
    }
}

/// A co-sender's role in one joint transmission.
#[derive(Debug, Clone, Copy)]
pub struct CosenderPlan {
    /// The co-sender node.
    pub node: NodeId,
    /// Its wait time `wᵢ` relative to the global reference, seconds
    /// (from [`DelayDatabase::wait_solution`] or §4.5 tracking).
    pub wait_s: f64,
}

/// What one receiver saw of the joint frame.
#[derive(Debug, Clone)]
pub struct ReceiverReport {
    /// The receiver node.
    pub node: NodeId,
    /// Whether the sync header decoded (detection + SIGNAL + CRC).
    pub header_ok: bool,
    /// The CRC-checked payload, if the joint data decoded.
    pub payload: Option<Vec<u8>>,
    /// Lead-sender channel estimate (from the header preamble).
    pub lead_channel: Option<ChannelEstimate>,
    /// Per-co-sender channel estimates (`None` = absent or header failed).
    pub co_channels: Vec<Option<ChannelEstimate>>,
    /// Measured misalignment of each co-sender vs the lead, seconds
    /// (positive = co-sender late) — the §4.5 ACK feedback value.
    pub measured_misalign_s: Vec<Option<f64>>,
    /// Per-data-carrier effective SNR (dB) of the composite channel.
    pub effective_snr_db: Vec<f64>,
    /// Combiner statistics (effective gain, EVM).
    pub stats: CombinerStats,
}

/// Outcome of one joint transmission.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// One report per requested receiver.
    pub reports: Vec<ReceiverReport>,
    /// Ground truth: actual data-section arrival misalignment of each
    /// co-sender vs the lead at each receiver, seconds (`[rx][co]`).
    pub true_misalign_s: Vec<Vec<f64>>,
    /// Ether times at which each co-sender began its training transmission
    /// (diagnostics).
    pub co_tx_times: Vec<Option<Time>>,
}

/// Margin of noise-only samples before the lead's header.
const CAPTURE_MARGIN: usize = 400;

/// Runs one complete joint transmission. See the module docs for the
/// protocol walkthrough. Co-senders that fail to decode the header simply
/// do not join (the subset-decodability path of §6 then applies).
#[allow(clippy::too_many_arguments)]
pub fn run_joint_transmission<R: Rng + ?Sized>(
    net: &mut Network,
    rng: &mut R,
    lead: NodeId,
    plans: &[CosenderPlan],
    receivers: &[NodeId],
    payload: &[u8],
    db: &DelayDatabase,
    cfg: &JointConfig,
) -> JointOutcome {
    let params = net.params.clone();
    let period = params.sample_period_fs();
    let fft = Fft::new(params.fft_size);
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    let backoff = params.cp_len / 4;

    let psdu = crc::append_crc(payload);
    let header = SyncHeader {
        lead: lead.0 as u16,
        packet_id: packet_id(payload),
        rate: cfg.rate,
        psdu_len: psdu.len() as u16,
        cp_extension: cfg.cp_extension as u8,
        n_cosenders: plans.len() as u8,
    };
    let timeline = JointTimeline::new(&params, psdu.len(), cfg.rate, cfg.cp_extension, plans.len());
    let data_cp = timeline.data_cp;

    net.medium.clear_transmissions();
    let t0 = Time((CAPTURE_MARGIN as u64) * period);

    // 1. Lead sender: header now, data after the SIFS + training slots.
    let header_wave = tx.frame_waveform(&header.to_bytes(), HEADER_RATE, frame::FLAG_JOINT);
    debug_assert_eq!(header_wave.len(), timeline.header_len);
    net.medium.transmit(lead, t0, header_wave);
    let lead_data = joint_data_waveform(
        &params,
        &fft,
        &psdu,
        cfg.rate,
        data_cp,
        codeword_for(0),
        cfg.smart_combiner,
        cfg.pilot_sharing,
    );
    let lead_data_time = Time(t0.0 + (timeline.data_start() as u64) * period);
    net.medium.transmit(lead, lead_data_time, lead_data);

    // 2. Co-senders: detect, compensate, join.
    let mut co_tx_times: Vec<Option<Time>> = vec![None; plans.len()];
    let mut co_data_times: Vec<Option<Time>> = vec![None; plans.len()];
    for (i, plan) in plans.iter().enumerate() {
        let co = plan.node;
        let window = CAPTURE_MARGIN * 2 + timeline.header_len + 200;
        let buf = net.medium.capture(rng, co, Time::ZERO, window);
        let Ok(res) = rx.receive(&buf) else { continue };
        if res.signal.flags & frame::FLAG_JOINT == 0 {
            continue;
        }
        let Some(decoded_header) = SyncHeader::from_bytes(&res.payload) else {
            continue;
        };
        if decoded_header.packet_id != header.packet_id {
            continue; // co-sender does not hold this packet
        }

        // Estimated ether time of the header's first sample at the lead.
        let slot_offset_s = (timeline.training_slot(i) as u64 * period) as f64 * 1e-15;
        let target_s = if cfg.delay_compensation {
            let arrival_s = arrival_estimate_s(&params, &res.diag, Time::ZERO);
            let d_lead_co = db.delay_s(lead, co).unwrap_or(0.0);
            arrival_s - d_lead_co + slot_offset_s + plan.wait_s
        } else {
            // Baseline (paper §8.1.2): the co-sender joins "without
            // compensating for delay differences" — it references its raw
            // *detection instant* minus a bench-calibrated mean detection
            // latency (~10 samples for the default detector: ~2 samples of
            // threshold crossing plus half the 16-sample pipeline
            // decimation). The residual misalignment is the per-packet
            // detection variability of [42] (the pipeline phase and the
            // SNR-dependent crossing jitter) plus the uncompensated
            // propagation-delay differences.
            let nominal_detect = 10.0;
            let arrival_raw_s =
                (res.diag.detection.detect_idx as f64 - nominal_detect) * period as f64 * 1e-15;
            arrival_raw_s + slot_offset_s
        };
        let detect_time = Time((res.diag.detection.detect_idx as u64) * period);
        let earliest = detect_time + net.node(co).turnaround;
        let tx_time = Time((target_s.max(0.0) * 1e15).round() as u64)
            .round_to_sample(period)
            .max(earliest.ceil_to_sample(period));

        // Build the co-sender's waveform: training then (after any other
        // co-senders' slots) data, with a continuous CFO pre-rotation.
        let training = cosender_training(&params, &fft, data_cp);
        let data = joint_data_waveform(
            &params,
            &fft,
            &psdu,
            cfg.rate,
            data_cp,
            codeword_for(i + 1),
            cfg.smart_combiner,
            cfg.pilot_sharing,
        );
        let data_gap_samples = (timeline.data_start() - timeline.training_slot(i)) as u64;
        let data_time = Time(tx_time.0 + data_gap_samples * period);
        let (mut training, mut data) = (training, data);
        if cfg.cfo_precorrection {
            // The header detection measured f_lead − f_co at this co-sender;
            // pre-rotating by it moves the co-sender onto the lead's
            // oscillator so the receiver's single CFO correction serves
            // both. The NCO runs continuously across training and data.
            let cfo = res.diag.detection.cfo_hz;
            apply_cfo_from(&mut training, cfo, params.sample_rate_hz, 0.0);
            apply_cfo_from(
                &mut data,
                cfo,
                params.sample_rate_hz,
                data_gap_samples as f64,
            );
        }
        net.medium.transmit(co, tx_time, training);
        net.medium.transmit(co, data_time, data);
        co_tx_times[i] = Some(tx_time);
        co_data_times[i] = Some(data_time);
    }

    // 3. Receivers.
    let mut reports = Vec::with_capacity(receivers.len());
    let mut true_misalign = Vec::with_capacity(receivers.len());
    for &rcv in receivers {
        let window = CAPTURE_MARGIN * 2 + timeline.total_len() + 400;
        let buf = net.medium.capture(rng, rcv, Time::ZERO, window);
        let report = decode_at_receiver(
            &params, &fft, &rx, &buf, rcv, &header, &timeline, backoff, cfg, &psdu,
        );
        // Ground truth misalignment of data-section arrivals.
        let mut truth = Vec::with_capacity(plans.len());
        for (i, plan) in plans.iter().enumerate() {
            match co_data_times[i] {
                Some(cdt) => {
                    let lead_arrival = lead_data_time.as_secs_f64() + net.true_delay_s(lead, rcv);
                    let co_arrival = cdt.as_secs_f64() + net.true_delay_s(plan.node, rcv);
                    truth.push(co_arrival - lead_arrival);
                }
                None => truth.push(f64::NAN),
            }
        }
        true_misalign.push(truth);
        reports.push(report);
    }

    JointOutcome {
        reports,
        true_misalign_s: true_misalign,
        co_tx_times,
    }
}

/// Joint-frame reception at one node.
#[allow(clippy::too_many_arguments)]
fn decode_at_receiver(
    params: &Params,
    fft: &Fft,
    rx: &Receiver,
    buf: &[Complex64],
    node: NodeId,
    header: &SyncHeader,
    timeline: &JointTimeline,
    backoff: usize,
    cfg: &JointConfig,
    _psdu_hint: &[u8],
) -> ReceiverReport {
    let n_co = header.n_cosenders as usize;
    let empty = ReceiverReport {
        node,
        header_ok: false,
        payload: None,
        lead_channel: None,
        co_channels: vec![None; n_co],
        measured_misalign_s: vec![None; n_co],
        effective_snr_db: Vec::new(),
        stats: CombinerStats::default(),
    };
    let Ok(res) = rx.receive(buf) else {
        return empty;
    };
    if res.signal.flags & frame::FLAG_JOINT == 0 {
        return empty;
    }
    let Some(rx_header) = SyncHeader::from_bytes(&res.payload) else {
        return empty;
    };
    if rx_header.packet_id != header.packet_id {
        return empty;
    }
    let layout = ssync_phy::preamble::PreambleLayout::of(params);
    let Some(base) = res.diag.detection.lts_start.checked_sub(layout.lts_start()) else {
        return empty;
    };
    let period = params.sample_period_fs();

    // CFO-correct a copy referenced to sample 0 (same convention as the
    // phy receiver, so the lead channel estimate stays consistent).
    let mut corrected = buf.to_vec();
    ssync_dsp::mixer::apply_cfo(
        &mut corrected,
        -res.diag.detection.cfo_hz,
        params.sample_rate_hz,
    );

    // Noise floor from the SIFS silence (time domain), for presence checks.
    let sifs_lo = base + timeline.header_len + timeline.sifs_len / 4;
    let sifs_hi = (base + timeline.header_len + 3 * timeline.sifs_len / 4).min(corrected.len());
    let time_noise = if sifs_hi > sifs_lo {
        ssync_dsp::complex::mean_power(&corrected[sifs_lo..sifs_hi])
    } else {
        1.0
    };

    // Per-co-sender channel estimates + misalignment measurements.
    let data_cp = timeline.data_cp;
    let mut co_channels: Vec<Option<ChannelEstimate>> = Vec::with_capacity(n_co);
    let mut misalign: Vec<Option<f64>> = Vec::with_capacity(n_co);
    for i in 0..n_co {
        let slot = base + timeline.training_slot(i);
        // Presence is measured on the central 60 % of the slot: adjacent
        // transmissions (the next slot, or the lead's data section) are
        // band-limited and pre-/post-ring a few samples into neighbouring
        // regions, which must not masquerade as a present co-sender.
        let trim = timeline.training_slot_len / 5;
        let ratio = training_slot_energy_ratio(
            &corrected,
            slot + trim,
            timeline.training_slot_len - 2 * trim,
            time_noise,
        );
        if ratio < PRESENCE_THRESHOLD || corrected.len() < slot + timeline.training_slot_len {
            co_channels.push(None);
            misalign.push(None);
            continue;
        }
        let est = estimate_from_training_slot(params, fft, &corrected, slot, data_cp, backoff);
        // Misalignment: co-sender's sub-sample offset minus the lead's.
        let delta_co =
            delay_from_slope(params, phase_slope(params, &est, 3e6)) - backoff.min(data_cp) as f64;
        let delta_lead = res.diag.timing_offset_samples;
        misalign.push(Some((delta_co - delta_lead) * period as f64 * 1e-15));
        co_channels.push(Some(est));
    }

    // Fold into role channels and decode the joint data.
    let mut senders: Vec<Option<&ChannelEstimate>> = vec![Some(&res.diag.channel)];
    senders.extend(co_channels.iter().map(|c| c.as_ref()));
    let roles = RoleChannels::from_estimates(params, &senders);
    let effective_snr_db = roles.effective_snr_db();
    let decode = decode_joint_data(
        params,
        fft,
        &corrected,
        base + timeline.data_start(),
        timeline.n_data_symbols,
        rx_header.psdu_len as usize,
        rx_header.rate,
        data_cp,
        backoff,
        &roles,
        cfg.pilot_sharing,
    );
    let (payload, stats) = match decode {
        Some((psdu, stats)) => {
            let payload = psdu.as_deref().and_then(crc::check_crc).map(|p| p.to_vec());
            (payload, stats)
        }
        None => (None, CombinerStats::default()),
    };

    ReceiverReport {
        node,
        header_ok: true,
        payload,
        lead_channel: Some(res.diag.channel.clone()),
        co_channels,
        measured_misalign_s: misalign,
        effective_snr_db,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssync_channel::Position;
    use ssync_phy::OfdmParams;
    use ssync_sim::ChannelModels;

    /// Lead at origin, co-sender 12 m east, receiver 10 m north-east-ish.
    fn test_network(seed: u64) -> Network {
        let params = OfdmParams::dot11a();
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(12.0, 0.0),
            Position::new(6.0, 8.0),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        Network::build(
            &mut rng,
            &params,
            &positions,
            &ChannelModels::clean(&params),
        )
    }

    fn measured_db(net: &mut Network, seed: u64) -> DelayDatabase {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = DelayDatabase::new();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(db.measure_all(net, &mut rng, &nodes, 2));
        db
    }

    #[test]
    fn end_to_end_joint_frame_decodes() {
        let mut net = test_network(1);
        let db = measured_db(&mut net, 2);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let payload: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &JointConfig::default(),
        );
        let report = &out.reports[0];
        assert!(report.header_ok, "header failed");
        assert!(report.co_channels[0].is_some(), "co-sender not seen");
        assert_eq!(
            report.payload.as_deref(),
            Some(&payload[..]),
            "joint data failed"
        );
        // Synchronization: the residual misalignment should be within a few
        // sample periods (< 3 samples at 20 Msps = 150 ns for this coarse
        // numerology; the wiglan preset tightens this in the benches).
        let truth = out.true_misalign_s[0][0];
        assert!(truth.is_finite());
        assert!(truth.abs() < 150e-9, "true misalignment {truth}");
        // The measured misalignment should agree with the truth reasonably.
        let measured = report.measured_misalign_s[0].expect("no measurement");
        assert!(
            (measured - truth).abs() < 60e-9,
            "measured {measured} vs truth {truth}"
        );
    }

    #[test]
    fn uncompensated_baseline_is_worse() {
        let mut net = test_network(4);
        let db = measured_db(&mut net, 5);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let payload = vec![0x42u8; 100];

        let mut rng = StdRng::seed_from_u64(6);
        let sync_out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &JointConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(6);
        let base_cfg = JointConfig {
            delay_compensation: false,
            ..Default::default()
        };
        let base_out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: 0.0,
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &base_cfg,
        );
        let sync_mis = sync_out.true_misalign_s[0][0].abs();
        let base_mis = base_out.true_misalign_s[0][0].abs();
        assert!(
            sync_mis < base_mis,
            "SourceSync {sync_mis} not tighter than baseline {base_mis}"
        );
    }

    #[test]
    fn lone_lead_when_cosender_misses_header() {
        // Give the co-sender no link from the lead by placing it absurdly
        // far: it will fail to decode and stay silent; the receiver must
        // still decode the lead alone.
        let params = OfdmParams::dot11a();
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(2000.0, 0.0), // unreachable co-sender
            Position::new(6.0, 8.0),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Network::build(
            &mut rng,
            &params,
            &positions,
            &ChannelModels::clean(&params),
        );
        let db = DelayDatabase::new(); // empty: co never joins anyway
        let payload = vec![0x77u8; 150];
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: 0.0,
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &JointConfig::default(),
        );
        let report = &out.reports[0];
        assert!(report.header_ok);
        assert!(report.co_channels[0].is_none(), "ghost co-sender");
        assert_eq!(
            report.payload.as_deref(),
            Some(&payload[..]),
            "lone lead failed"
        );
        assert!(out.true_misalign_s[0][0].is_nan());
    }

    #[test]
    fn effective_snr_reported_per_carrier() {
        let mut net = test_network(8);
        let db = measured_db(&mut net, 9);
        let sol = db
            .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &[1, 2, 3, 4],
            &db,
            &JointConfig::default(),
        );
        let report = &out.reports[0];
        assert_eq!(report.effective_snr_db.len(), 48);
        assert!(report.stats.mean_effective_gain > 0.0);
    }
}
