//! SourceSync: the paper's primary contribution.
//!
//! A distributed architecture that lets multiple 802.11-like senders
//! transmit the *same packet simultaneously* and have it decode at the
//! receiver with power and diversity gains (Rahul, Hassanieh, Katabi —
//! SIGCOMM 2010). Three components:
//!
//! * [`sls`] — the **Symbol-Level Synchronizer**: phase-slope arrival
//!   estimation (immune to detection-instant jitter), the probe/response
//!   delay protocol of Eq. 2, wait-time computation (exact for one
//!   receiver, min-max LP for several — §4.6), and ACK-driven delay
//!   tracking (§4.5);
//! * [`jce`] — the **Joint Channel Estimator**: per-sender channel
//!   estimates from staggered training, missing-sender detection, role
//!   channels, and per-role residual-CFO tracking via shared pilots (§5);
//! * [`combiner`] — the **Smart Combiner**: distributed Alamouti /
//!   replicated-Alamouti coding so concurrent signals cannot combine
//!   destructively (§6);
//!
//! glued together by:
//!
//! * [`wire`] — the synchronization-header format,
//! * [`timeline`] — the joint-frame layout of Figs. 6–7,
//! * [`session`] — the staged, per-role [`JointSession`] protocol driver
//!   over the sample-level medium (`LeadTx` → `CosenderJoin` →
//!   `ReceiverDecode`, with typed [`JoinFailure`] join diagnostics),
//! * [`joint`] — the protocol vocabulary plus the one-call
//!   [`run_joint_transmission`] compatibility wrapper over the session.

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

pub mod combiner;
pub mod jce;
pub mod joint;
pub mod session;
pub mod sls;
pub mod timeline;
pub mod wire;

pub use combiner::{
    decode_joint_data, decode_joint_data_with, joint_data_waveform, joint_data_waveform_into,
    CombineWorkspace, CombinerStats, DataSectionSpec, JointDataWindow,
};
pub use jce::RoleChannels;
pub use joint::{run_joint_transmission, CosenderPlan, JointConfig, JointOutcome, ReceiverReport};
pub use session::{
    CosenderJoin, CosenderOutcome, CosenderTx, JoinFailure, JointSession, LeadFrame, LeadTx,
    ReceiverDecode, SessionWorkspace,
};
pub use sls::{arrival_estimate_s, probe_pair, tracking_update, DelayDatabase, ProbeOutcome};
pub use timeline::{JointTimeline, HEADER_RATE, SIFS_S};
pub use wire::{packet_id, SyncHeader};
