//! Golden-output regression tests: ported scenarios must reproduce the
//! pre-harness figure binaries' stdout byte-for-byte.
//!
//! The files under `tests/golden/` are verbatim captures of the original
//! (pre-`ssync_exp`) binaries at default settings (`SSYNC_TRIALS=1`).
//! Each scenario is rendered at one and at several worker threads — the
//! harness promises both match the serial legacy bytes exactly.

use ssync_bench::scenarios;
use ssync_exp::{golden, run_rendered, RunConfig};

fn check(name: &str, expected: &str) {
    let scenario = scenarios::find(name).expect("scenario registered");
    for threads in [1, 4] {
        let cfg = RunConfig {
            threads,
            ..Default::default()
        };
        golden::assert_matches(
            &format!("{name} (threads={threads})"),
            expected,
            &run_rendered(scenario, &cfg),
        );
    }
}

#[test]
fn fig05_phase_slope_matches_prerefactor_output() {
    check(
        "fig05_phase_slope",
        include_str!("golden/fig05_phase_slope.tsv"),
    );
}

#[test]
fn fig08_wait_lp_matches_prerefactor_output() {
    check("fig08_wait_lp", include_str!("golden/fig08_wait_lp.tsv"));
}

#[test]
fn fig14_delay_spread_matches_prerefactor_output() {
    check(
        "fig14_delay_spread",
        include_str!("golden/fig14_delay_spread.tsv"),
    );
}

#[test]
fn table_overhead_matches_prerefactor_output() {
    check("table_overhead", include_str!("golden/table_overhead.tsv"));
}

/// The two scenarios that drive the most joint transmissions, pinned when
/// `run_joint_transmission` became a wrapper over the staged
/// `JointSession`. They are checked at one multi-threaded worker count
/// here (they are the suite's slowest scenarios in the debug profile;
/// thread-count determinism is covered by `determinism.rs`), and CI's
/// `ssync-lab --check` step re-verifies both in release on every push.
#[test]
fn fig12_sync_error_matches_presession_output() {
    let scenario = scenarios::find("fig12_sync_error").expect("scenario registered");
    let cfg = RunConfig {
        threads: 4,
        ..Default::default()
    };
    golden::assert_matches(
        "fig12_sync_error (threads=4)",
        include_str!("golden/fig12_sync_error.tsv"),
        &run_rendered(scenario, &cfg),
    );
}

#[test]
fn fig13_cp_sweep_matches_presession_output() {
    let scenario = scenarios::find("fig13_cp_sweep").expect("scenario registered");
    let cfg = RunConfig {
        threads: 4,
        ..Default::default()
    };
    golden::assert_matches(
        "fig13_cp_sweep (threads=4)",
        include_str!("golden/fig13_cp_sweep.tsv"),
        &run_rendered(scenario, &cfg),
    );
}

/// Two further joint-transmission-heavy scenarios, pinned when the modem
/// grew its zero-allocation workspaces: the workspace paths promise
/// bit-identical signal processing, and these captures (taken immediately
/// before the refactor) enforce it end to end. Checked at one
/// multi-threaded worker count for the same reason as fig12/fig13 above.
#[test]
fn fig16_subcarrier_snr_matches_preworkspace_output() {
    let scenario = scenarios::find("fig16_subcarrier_snr").expect("scenario registered");
    let cfg = RunConfig {
        threads: 4,
        ..Default::default()
    };
    golden::assert_matches(
        "fig16_subcarrier_snr (threads=4)",
        include_str!("golden/fig16_subcarrier_snr.tsv"),
        &run_rendered(scenario, &cfg),
    );
}

/// The event-driven testbed's fault-injection sweep, pinned when the
/// testbed landed: the whole protocol stack (CSMA/CA contention, ARQ,
/// ExOR batch maps, joint frames, fault seams) must keep producing these
/// exact typed outcomes. Its sibling `testbed_multihop` golden is pinned
/// in `tests/golden/` too but replayed only by CI's release-mode
/// `ssync-lab --check` step — its measured-delivery link shaping makes a
/// debug-profile render too slow for the unit suite.
#[test]
fn testbed_fault_matches_pinned_output() {
    let scenario = scenarios::find("testbed_fault").expect("scenario registered");
    let cfg = RunConfig {
        threads: 4,
        ..Default::default()
    };
    golden::assert_matches(
        "testbed_fault (threads=4)",
        include_str!("golden/testbed_fault.tsv"),
        &run_rendered(scenario, &cfg),
    );
}

#[test]
fn ablation_combiner_matches_preworkspace_output() {
    let scenario = scenarios::find("ablation_combiner").expect("scenario registered");
    let cfg = RunConfig {
        threads: 4,
        ..Default::default()
    };
    golden::assert_matches(
        "ablation_combiner (threads=4)",
        include_str!("golden/ablation_combiner.tsv"),
        &run_rendered(scenario, &cfg),
    );
}
