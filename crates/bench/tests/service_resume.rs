//! Checkpoint/resume determinism for the city-scale testbed's service
//! decomposition, on a debug-fast small city: a run killed at city *k*
//! and resumed — at a different worker count — renders bytes identical
//! to an uninterrupted run, and the service's observability artifacts
//! are themselves worker-count-invariant.
//!
//! This drives the *production* decomposition (`CitySweep` is exactly
//! what serves `testbed_city`), just on a 16-node plan; CI's service
//! smoke job replays the same enqueue → kill → resume → golden-check
//! cycle on the full 504-node avenue in release mode.

use ssync_bench::scenarios::CitySweep;
use ssync_exp::service::units::run_units_rendered;
use ssync_exp::service::{process_job, JobOutcome, JobQueue, JobSpec, ServiceConfig};
use ssync_exp::Format;
use ssync_obs::ServiceObs;
use ssync_phy::RateId;
use ssync_testbed::{RoutingMode, TestbedConfig};

/// A 2×2-block, 16-node city (the `city_determinism` test plan): four
/// interference-closed regions per city, fast enough for the debug
/// profile.
fn small_sweep() -> CitySweep {
    CitySweep::new(
        ssync_channel::CityPlan {
            blocks_x: 2,
            blocks_y: 2,
            block_m: 20.0,
            street_m: 100.0,
            nodes_per_block: 4,
        },
        40.0,
        TestbedConfig {
            batch_size: 4,
            payload_len: 64,
            ..TestbedConfig::new(RateId::R12, RoutingMode::ExorSourceSync)
        },
    )
}

fn spec(trials: usize, format: Format) -> JobSpec {
    JobSpec {
        scenario: "small_city".to_string(),
        trials,
        seed: 0,
        format,
    }
}

#[test]
fn city_unit_decomposition_matches_the_serial_bytes() {
    let sweep = small_sweep();
    for format in [Format::Tsv, Format::Json] {
        let serial = sweep.render_serial("small_city", &spec(2, format).run_config(1));
        for threads in [1usize, 4] {
            let cfg = spec(2, format).run_config(threads);
            assert_eq!(
                run_units_rendered(&sweep, "small_city", &cfg),
                serial,
                "threads={threads} format={format:?}"
            );
        }
    }
}

/// Runs the small-city job in a fresh spool: optionally killed after
/// `abort` fresh units, then resumed with `resume_workers`. Returns the
/// final result bytes and the service observability artifacts.
fn run_job(
    first_workers: usize,
    abort: Option<usize>,
    resume_workers: usize,
) -> (String, String, String) {
    let tag = format!(
        "city_resume_{first_workers}_{:?}_{resume_workers}_{}",
        abort,
        std::process::id()
    );
    let root = std::env::temp_dir().join(tag);
    let _ = std::fs::remove_dir_all(&root);
    let queue = JobQueue::open(&root).unwrap();
    let the_spec = spec(2, Format::Tsv);
    let id = queue.enqueue(&the_spec).unwrap();
    let (claimed, _) = queue.claim_next().unwrap().unwrap();
    assert_eq!(claimed, id);

    let mut obs = ServiceObs::new();
    let sweep = small_sweep();
    let svc = ServiceConfig {
        workers: first_workers,
        abort_after_units: abort,
    };
    let outcome = process_job(&queue, &id, &the_spec, &sweep, &svc, &mut obs).unwrap();
    if let Some(k) = abort {
        assert_eq!(outcome, JobOutcome::Interrupted { done: k, total: 2 });
        // The "crash": drop every in-memory handle; only the spool
        // survives into the resumed process state.
        drop(queue);
        let queue = JobQueue::open(&root).unwrap();
        let outcome = process_job(
            &queue,
            &id,
            &the_spec,
            &sweep,
            &ServiceConfig::new(resume_workers),
            &mut obs,
        )
        .unwrap();
        assert_eq!(
            outcome,
            JobOutcome::Completed {
                units: 2,
                from_checkpoint: k
            }
        );
    }
    let queue = JobQueue::open(&root).unwrap();
    let bytes = std::fs::read_to_string(queue.result_path(&id, Format::Tsv)).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    (
        bytes,
        obs.chrome_trace_json(),
        ssync_exp::sink::render_tsv(&obs.metrics_snapshot()),
    )
}

#[test]
fn killed_then_resumed_city_run_is_indistinguishable_from_uninterrupted() {
    let (uninterrupted, _, _) = run_job(1, None, 1);
    // Sanity: the uninterrupted service bytes equal the serial render.
    assert_eq!(
        uninterrupted,
        small_sweep().render_serial("small_city", &spec(2, Format::Tsv).run_config(1))
    );
    for kill_at in [0usize, 1] {
        for (first, resumed) in [(1usize, 8usize), (8, 1)] {
            let (bytes, _, _) = run_job(first, Some(kill_at), resumed);
            assert_eq!(
                bytes, uninterrupted,
                "kill_at={kill_at} workers={first}->{resumed}"
            );
        }
    }
}

#[test]
fn service_observability_is_worker_count_invariant() {
    // The same kill/resume pattern at different worker counts must
    // produce byte-identical trace JSON and metric snapshots — service
    // events run on logical time, never completion order or wall-clock.
    let (_, trace_1, metrics_1) = run_job(1, Some(1), 1);
    let (_, trace_8, metrics_8) = run_job(8, Some(1), 8);
    assert_eq!(trace_1, trace_8);
    assert_eq!(metrics_1, metrics_8);
    assert!(trace_1.contains("\"name\": \"service_checkpoint\""));
    assert!(metrics_1.contains("service/units_restored"));
}
