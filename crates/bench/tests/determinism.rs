//! The harness determinism contract, end to end: a nontrivial sweep must
//! serialize to byte-identical output at 1, 2, and 8 worker threads, in
//! both formats. Completion order under contention is effectively random,
//! so any order-dependence in collection or aggregation shows up here.

use ssync_bench::scenarios;
use ssync_exp::{run_rendered, Format, RunConfig};

fn render(name: &str, threads: usize, format: Format) -> String {
    let scenario = scenarios::find(name).expect("scenario registered");
    run_rendered(
        scenario,
        &RunConfig {
            threads,
            trials_scale: 1,
            format,
        },
    )
}

/// 18 grid points × 100 trials through the declarative `Sweep` path —
/// enough jobs that workers genuinely interleave.
#[test]
fn sweep_scenario_is_byte_identical_across_thread_counts() {
    for format in [Format::Tsv, Format::Json] {
        let serial = render("sweep_wait_residual", 1, format);
        assert!(!serial.is_empty());
        for threads in [2, 8] {
            assert_eq!(
                serial,
                render("sweep_wait_residual", threads, format),
                "sweep_wait_residual diverged at {threads} threads ({format:?})"
            );
        }
    }
}

/// The event-driven testbed: one full protocol run per fault class
/// through `ssync_testbed::run_transfer`. Identical seeds must give
/// byte-identical output across two renders and across 1/8 workers —
/// the event loop, the per-exchange RNG draws, and the fault seams all
/// sit behind the harness determinism contract.
#[test]
fn testbed_scenario_is_byte_identical_across_runs_and_thread_counts() {
    let first = render("testbed_fault", 1, Format::Tsv);
    assert!(!first.is_empty());
    let again = render("testbed_fault", 1, Format::Tsv);
    assert_eq!(first, again, "testbed_fault diverged between two runs");
    assert_eq!(
        first,
        render("testbed_fault", 8, Format::Tsv),
        "testbed_fault diverged at 8 threads"
    );
}

/// The serial-draw + parallel-solve split of fig08 (1200 LP jobs).
#[test]
fn fig08_is_byte_identical_across_thread_counts() {
    let serial = render("fig08_wait_lp", 1, Format::Tsv);
    for threads in [2, 8] {
        assert_eq!(
            serial,
            render("fig08_wait_lp", threads, Format::Tsv),
            "fig08_wait_lp diverged at {threads} threads"
        );
    }
}
