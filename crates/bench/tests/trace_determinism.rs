//! The observability determinism contract, end to end: running a
//! scenario observed must (1) leave its rendered output byte-identical
//! to the unobserved run, (2) produce byte-identical trace and metric
//! artifacts at every thread count, and (3) produce the *same bytes* on
//! the simd and scalar builds — enforced by a pinned FNV-1a hash that
//! compiles in every feature mode, so both CI jobs must reproduce it
//! (the same cross-build differential trick as
//! `ssync_phy`'s pinned receive-chain hash).
//!
//! `testbed_fault` is the vehicle: it drives every protocol seam (DCF
//! contention, ARQ, ExOR maps, joint frames, fault injectors) and is the
//! cheap member of the testbed pair (`testbed_multihop`'s link shaping
//! is release-only; CI's trace-smoke step covers it).

use ssync_bench::scenarios;
use ssync_exp::{run_rendered, Format, RunConfig};
use ssync_obs::run_observed_rendered;

/// Rendered output, Chrome trace JSON, and metrics TSV of an observed
/// `testbed_fault` run at `threads` workers.
fn observed_fault(threads: usize) -> (String, String, String) {
    let scenario = scenarios::find_observable("testbed_fault").expect("testbed_fault observable");
    let cfg = RunConfig {
        threads,
        trials_scale: 1,
        format: Format::Tsv,
    };
    let (rendered, obs) = run_observed_rendered(scenario, &cfg);
    let metrics = ssync_exp::sink::render_tsv(&obs.metrics_snapshot());
    (rendered, obs.chrome_trace_json(), metrics)
}

/// FNV-1a over a byte stream (the same constants as
/// `ssync_phy`'s pinned diagnostic hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[test]
fn observed_run_matches_unobserved_and_is_thread_count_invariant() {
    let plain = run_rendered(
        scenarios::find("testbed_fault").expect("registered"),
        &RunConfig {
            threads: 1,
            trials_scale: 1,
            format: Format::Tsv,
        },
    );
    let (out1, trace1, metrics1) = observed_fault(1);
    let (out8, trace8, metrics8) = observed_fault(8);

    // Tracing never perturbs the scenario's own bytes.
    assert_eq!(plain, out1, "observing testbed_fault changed its output");
    assert_eq!(out1, out8, "observed output diverged at 8 threads");

    // The artifacts themselves are part of the determinism contract.
    assert_eq!(trace1, trace8, "chrome trace diverged at 8 threads");
    assert_eq!(metrics1, metrics8, "metrics snapshot diverged at 8 threads");

    // Structural sanity: the trace is a Chrome trace-event JSON object
    // with one named process per (case, trial) track and real protocol
    // events on node lanes.
    assert!(trace1.starts_with("{\"traceEvents\": [\n"));
    assert!(trace1.ends_with("]}\n"));
    assert!(trace1.contains("\"name\": \"process_name\""));
    assert!(trace1.contains("\"args\": {\"name\": \"baseline/t0\"}"));
    assert!(trace1.contains("\"args\": {\"name\": \"sp_ack_drop/t0\"}"));
    for event in [
        "dcf_attempt",
        "frame_tx",
        "frame_rx",
        "joint_lead",
        "join_outcome",
    ] {
        assert!(
            trace1.contains(&format!("\"name\": \"{event}\"")),
            "trace is missing {event} events"
        );
    }
    // The metrics snapshot carries the run counters and rx diagnostics.
    assert!(metrics1.contains("delivered"));
    assert!(metrics1.contains("rx_snr_db"));
    assert!(metrics1.contains("lookup_miss_exchange_empty"));
}

/// The artifact bytes pinned across builds: this test compiles in every
/// feature mode, so the `simd` and scalar builds must both reproduce
/// these hashes for the suite to pass in both CI jobs. Any divergence in
/// the signal-processing kernels, the event timestamps, or the renderers
/// moves a hash.
#[test]
fn trace_and_metric_bytes_are_build_invariant() {
    let (_, trace, metrics) = observed_fault(1);
    assert_eq!(
        fnv1a(trace.as_bytes()),
        PINNED_TRACE_HASH,
        "chrome trace bytes diverged from the pinned capture ({} bytes)",
        trace.len()
    );
    assert_eq!(
        fnv1a(metrics.as_bytes()),
        PINNED_METRICS_HASH,
        "metrics snapshot bytes diverged from the pinned capture:\n{metrics}"
    );
}

/// Pinned by running the seeded `testbed_fault` capture on the simd
/// build; the scalar build must reproduce them exactly.
const PINNED_TRACE_HASH: u64 = 14440817084731324519;
const PINNED_METRICS_HASH: u64 = 7424441211631318124;
