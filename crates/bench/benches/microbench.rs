//! Criterion microbenchmarks of the signal-path hot spots and the
//! synchronizer's solver.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_dsp::rng::ComplexGaussian;
use ssync_dsp::{Complex64, Fft};
use ssync_linprog::MisalignmentProblem;
use ssync_phy::{OfdmParams, RateId, Receiver, Transmitter};

fn bench_fft(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let gauss = ComplexGaussian::unit();
    for n in [64usize, 128] {
        let fft = Fft::new(n);
        let input = gauss.sample_vec(&mut rng, n);
        c.bench_function(&format!("fft_forward_{n}"), |b| {
            b.iter_batched(
                || input.clone(),
                |mut buf| fft.forward(&mut buf),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_viterbi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let info: Vec<u8> = (0..1000).map(|_| rng.gen_range(0..2u8)).collect();
    let mut bits = info.clone();
    bits.extend([0u8; 6]);
    let coded = ssync_phy::convcode::encode_half(&bits);
    let llrs = ssync_phy::viterbi::llrs_from_bits(&coded);
    c.bench_function("viterbi_decode_1000bits", |b| {
        b.iter(|| ssync_phy::viterbi::decode_terminated(&llrs).unwrap())
    });
}

fn bench_full_frame(c: &mut Criterion) {
    let params = OfdmParams::dot11a();
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let payload: Vec<u8> = (0..1460).map(|_| rng.gen()).collect();

    c.bench_function("tx_frame_1460B_r24", |b| {
        b.iter(|| tx.frame_waveform(&payload, RateId::R24, 0))
    });

    let wave = tx.frame_waveform(&payload, RateId::R24, 0);
    let noise = ComplexGaussian::with_power(1e-3);
    let mut buf: Vec<Complex64> = noise.sample_vec(&mut rng, 200);
    buf.extend(wave);
    buf.extend(noise.sample_vec(&mut rng, 200));
    for (i, s) in buf.iter_mut().enumerate() {
        if i >= 200 {
            *s += noise.sample(&mut rng);
        }
    }
    c.bench_function("rx_frame_1460B_r24", |b| {
        b.iter(|| rx.receive(&buf).expect("decodes"))
    });
}

fn bench_detection(c: &mut Criterion) {
    let params = OfdmParams::dot11a();
    let fft = Fft::new(params.fft_size);
    let det = ssync_phy::Detector::new(&params, &fft);
    let pre = ssync_phy::preamble::preamble_waveform(&params, &fft);
    let mut rng = StdRng::seed_from_u64(4);
    let mut buf = ComplexGaussian::with_power(0.01).sample_vec(&mut rng, 4000);
    for (i, s) in pre.iter().enumerate() {
        buf[1000 + i] += *s;
    }
    c.bench_function("packet_detect_4k_samples", |b| {
        b.iter(|| det.detect(&params, &buf, 0).expect("detects"))
    });
}

fn bench_alamouti(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let gauss = ComplexGaussian::unit();
    let xs = gauss.sample_vec(&mut rng, 96);
    let h_a = gauss.sample(&mut rng);
    let h_b = gauss.sample(&mut rng);
    let sa = ssync_stbc::encode_stream(ssync_stbc::Codeword::A, &xs);
    let sb = ssync_stbc::encode_stream(ssync_stbc::Codeword::B, &xs);
    let ys: Vec<Complex64> = sa
        .iter()
        .zip(&sb)
        .map(|(a, b)| h_a * *a + h_b * *b)
        .collect();
    c.bench_function("alamouti_decode_96syms", |b| {
        b.iter(|| ssync_stbc::decode_stream(&ys, h_a, h_b))
    });
}

fn bench_wait_lp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let problem = MisalignmentProblem {
        lead_delays: (0..4).map(|_| rng.gen_range(10e-9..300e-9)).collect(),
        cosender_delays: (0..4)
            .map(|_| (0..4).map(|_| rng.gen_range(10e-9..300e-9)).collect())
            .collect(),
    };
    c.bench_function("wait_lp_4co_4rx", |b| b.iter(|| problem.solve()));
}

fn bench_fractional_delay(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let sig = ComplexGaussian::unit().sample_vec(&mut rng, 2000);
    c.bench_function("fractional_delay_2k_samples", |b| {
        b.iter(|| ssync_dsp::delay::fractional_delay(&sig, 0.37))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fft, bench_viterbi, bench_full_frame, bench_detection, bench_alamouti, bench_wait_lp, bench_fractional_delay
}
criterion_main!(benches);
