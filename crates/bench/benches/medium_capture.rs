//! `medium_capture` — the performance baseline of the medium's
//! extent-checked capture path.
//!
//! The capture bugfix this pins: `WaveformMedium::capture` predicts each
//! transmission's delivered extent from the link delay *before*
//! propagating, so a transmission that cannot overlap the window costs an
//! integer comparison instead of a full multipath/CFO/interpolation pass.
//! The rows sweep the number of stale (non-overlapping) transmissions on
//! the ether past a fixed one-live-frame capture: per-capture cost must
//! stay flat as history grows, and `retire_before` must restore the
//! zero-history baseline exactly.
//!
//! Committed baseline: `BENCH_medium_capture.json` at the repo root
//! (regenerate with `SSYNC_BENCH_JSON=BENCH_medium_capture.json cargo
//! bench -p ssync_bench --bench medium_capture`; see EXPERIMENTS.md).

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_channel::Position;
use ssync_dsp::rng::ComplexGaussian;
use ssync_phy::OfdmParams;
use ssync_sim::{ChannelModels, Network, NodeId, Time};

/// Samples per placement window: comfortably past the delivered extent of
/// one waveform (length + multipath spill + interpolator tail), so
/// transmissions in different windows never overlap.
const WINDOW: u64 = 4096;

/// Waveform length in samples (an R12 data frame is this order).
const WAVE_LEN: usize = 1600;

/// The placement window the live frame and the capture share; every stale
/// window index is far below it.
const LIVE_WINDOW: u64 = 5000;

fn city_block_net() -> Network {
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(12.0, 5.0),
        Position::new(25.0, 0.0),
        Position::new(18.0, 14.0),
    ];
    let mut rng = StdRng::seed_from_u64(7);
    Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::testbed(&params),
    )
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));

    let mut net = city_block_net();
    let period = net.params.sample_period_fs();
    let mut rng = StdRng::seed_from_u64(8);
    let wave = ComplexGaussian::with_power(1.0).sample_vec(&mut rng, WAVE_LEN);
    let from = Time(LIVE_WINDOW * WINDOW * period);

    for stale in [0usize, 256, 4096] {
        net.medium.clear_transmissions();
        for w in 0..stale {
            net.medium
                .transmit(NodeId(1), Time(w as u64 * WINDOW * period), wave.clone());
        }
        net.medium.transmit(NodeId(1), from, wave.clone());
        criterion.bench_function(&format!("capture_2048w_1live_{stale}stale"), |b| {
            b.iter(|| net.medium.capture(&mut rng, NodeId(0), from, 2048))
        });
    }

    // Retirement restores the zero-history baseline: after retiring the
    // 4096 stale extents the capture row must match `0stale`.
    net.medium
        .retire_before(Time((4096 + 1) as u64 * WINDOW * period));
    assert_eq!(net.medium.transmissions().len(), 1, "live frame retired");
    criterion.bench_function("capture_2048w_1live_postretire", |b| {
        b.iter(|| net.medium.capture(&mut rng, NodeId(0), from, 2048))
    });

    if let Ok(path) = std::env::var("SSYNC_BENCH_JSON") {
        std::fs::write(&path, criterion.summary_json("medium_capture"))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
