//! `modem_hot_path` — the performance baseline of the zero-allocation
//! modem workspaces.
//!
//! Three tiers of the sample-level hot path, each benchmarked through the
//! legacy allocating entry point AND the workspace-threaded `_with`
//! variant (which is bit-identical, per the differential suite):
//!
//! 1. **end-to-end frame rx** — detection → channel estimation →
//!    equalisation → Viterbi → CRC of a 1460-byte frame,
//! 2. **joint combine** — Alamouti decoding + LLR demap of a joint data
//!    section at two senders,
//! 3. **N-co-sender session step** — one complete staged `JointSession`
//!    (lead TX, two co-sender joins, receiver decode) over the waveform
//!    medium.
//!
//! Committed baseline: `BENCH_modem_hot_path.json` at the repo root
//! (regenerate with `SSYNC_BENCH_JSON=BENCH_modem_hot_path.json cargo
//! bench -p ssync_bench --bench modem_hot_path`; see EXPERIMENTS.md).

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_channel::Position;
use ssync_core::{
    decode_joint_data, decode_joint_data_with, joint_data_waveform, CombineWorkspace, CosenderPlan,
    DataSectionSpec, DelayDatabase, JointConfig, JointDataWindow, JointSession, RoleChannels,
    SessionWorkspace,
};
use ssync_dsp::rng::ComplexGaussian;
use ssync_dsp::{Complex64, Fft};
use ssync_phy::chanest::ChannelEstimate;
use ssync_phy::workspace::WorkspacePool;
use ssync_phy::{frame, OfdmParams, RateId, Receiver, RxWorkspace, Transmitter};
use ssync_sim::{ChannelModels, Network, NodeId};

fn bench_frame_rx(c: &mut Criterion) {
    let params = OfdmParams::dot11a();
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let payload: Vec<u8> = (0..1460).map(|_| rng.gen()).collect();
    let wave = tx.frame_waveform(&payload, RateId::R24, 0);
    let noise = ComplexGaussian::with_power(1e-3);
    let mut buf = noise.sample_vec(&mut rng, 200);
    buf.extend(wave);
    buf.extend(noise.sample_vec(&mut rng, 200));

    c.bench_function("frame_rx_1460B_r24_legacy", |b| {
        b.iter(|| rx.receive(&buf).expect("decodes"))
    });
    let mut ws = RxWorkspace::new(&params);
    let _ = rx.receive_with(&buf, &mut ws).expect("warmup");
    c.bench_function("frame_rx_1460B_r24_workspace", |b| {
        b.iter(|| rx.receive_with(&buf, &mut ws).expect("decodes"))
    });

    // Batched throughput over the pool: 8 copies of the capture, decoded
    // through `receive_batch`. Reported time is for the whole batch, so
    // per-frame cost is the row divided by 8.
    let captures: Vec<Vec<Complex64>> = (0..8).map(|_| buf.clone()).collect();
    let pool = WorkspacePool::with_capacity(&params, 4);
    c.bench_function("frame_rx_batch8_r24_pool_1thread", |b| {
        b.iter(|| rx.receive_batch(&captures, &pool, 1))
    });
    c.bench_function("frame_rx_batch8_r24_pool_4threads", |b| {
        b.iter(|| rx.receive_batch(&captures, &pool, 4))
    });
}

fn bench_joint_combine(c: &mut Criterion) {
    let params = OfdmParams::dot11a();
    let fft = Fft::new(params.fft_size);
    let mut rng = StdRng::seed_from_u64(2);
    let psdu: Vec<u8> = (0..700).map(|_| rng.gen()).collect();
    let spec = DataSectionSpec {
        rate: RateId::R12,
        cp_len: params.cp_len,
        smart_combiner: true,
        pilot_sharing: true,
    };
    let h_a = Complex64::from_polar(1.0, 0.4);
    let h_b = Complex64::from_polar(0.8, -1.2);
    let wa = joint_data_waveform(&params, &fft, &psdu, ssync_stbc::Codeword::A, &spec);
    let wb = joint_data_waveform(&params, &fft, &psdu, ssync_stbc::Codeword::B, &spec);
    let noise = ComplexGaussian::with_power(1e-4);
    let buf: Vec<Complex64> = wa
        .iter()
        .zip(&wb)
        .map(|(a, b)| h_a * *a + h_b * *b + noise.sample(&mut rng))
        .collect();
    let occupied = params.occupied_carriers();
    let mk = |v: Complex64| ChannelEstimate {
        carriers: occupied.clone(),
        values: vec![v; occupied.len()],
        noise_power: 1e-4,
    };
    let (lead, co) = (mk(h_a), mk(h_b));
    let roles = RoleChannels::from_estimates(&params, &[Some(&lead), Some(&co)]);
    let window = JointDataWindow {
        data_start: 0,
        n_syms: frame::n_data_symbols(&params, psdu.len(), RateId::R12),
        psdu_len: psdu.len(),
        backoff: 0,
    };

    c.bench_function("joint_combine_700B_r12_legacy", |b| {
        b.iter(|| decode_joint_data(&params, &fft, &buf, &window, &spec, &roles).expect("decodes"))
    });
    let mut ws = CombineWorkspace::new(&params);
    c.bench_function("joint_combine_700B_r12_workspace", |b| {
        b.iter(|| {
            decode_joint_data_with(&params, &fft, &buf, &window, &spec, &roles, &mut ws)
                .expect("decodes")
        })
    });
}

/// A 4-node clean-channel network: lead, two co-senders, one receiver.
fn session_fixture() -> (Network, DelayDatabase, JointSession) {
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(10.0, 0.0),
        Position::new(0.0, 10.0),
        Position::new(8.0, 8.0),
    ];
    let mut rng = StdRng::seed_from_u64(3);
    let net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            db.set_delay(nodes[i], nodes[j], net.true_delay_s(nodes[i], nodes[j]));
        }
    }
    let waits = db
        .wait_solution(NodeId(0), &[NodeId(1), NodeId(2)], &[NodeId(3)])
        .expect("oracle delays");
    let session = JointSession::new(NodeId(0))
        .cosenders(
            [NodeId(1), NodeId(2)]
                .into_iter()
                .zip(waits.waits.iter().copied())
                .map(|(node, wait_s)| CosenderPlan { node, wait_s }),
        )
        .receiver(NodeId(3))
        .payload(vec![0x5Au8; 260])
        .config(JointConfig::default());
    (net, db, session)
}

fn bench_session_step(c: &mut Criterion) {
    let (mut net, db, session) = session_fixture();

    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("session_step_2co_1rx_legacy", |b| {
        b.iter(|| session.run(&mut net, &mut rng, &db))
    });
    let mut ws = SessionWorkspace::new(net.params.clone());
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("session_step_2co_1rx_workspace", |b| {
        b.iter(|| session.run_with(&mut net, &mut rng, &db, &mut ws))
    });
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    bench_frame_rx(&mut criterion);
    bench_joint_combine(&mut criterion);
    bench_session_step(&mut criterion);
    if let Ok(path) = std::env::var("SSYNC_BENCH_JSON") {
        std::fs::write(&path, criterion.summary_json("modem_hot_path"))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
