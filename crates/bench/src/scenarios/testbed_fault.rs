//! Event-driven testbed under fault injection: every
//! `ssync_sim::FaultInjector` fault class (drop / corrupt) wired into
//! each protocol seam (DATA, ACK/batch-map, sync header) plus the
//! missing-delay-database degradation, with the typed protocol outcome
//! each one maps to.
//!
//! Rows report, per injected class: deliveries, protocol reactions (ARQ
//! retries, lost ACKs), the typed join-failure breakdown, and the
//! injector's own hit counts — so a regression in any seam's wiring is a
//! visible diff, not a silent behaviour change.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_obs::{Obs, Observable};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, FaultInjector, Network, NodeId};
use ssync_testbed::{
    run_transfer_observed, DelaySource, FaultPlan, RoutingMode, TestbedConfig, TestbedOutcome,
};

/// A fixed-budget diamond (src 0, relays 1–3, dst 4): healthy first hop,
/// marginal final hop, dead direct link. Unlike `testbed_multihop` this
/// skips the measured-delivery link shaping — the fault sweep asserts
/// *typed protocol outcomes*, not throughput orderings, so pinned mean
/// SNRs are enough and keep the scenario cheap.
fn fault_network(seed: u64) -> Network {
    let params = OfdmParams::dot11a();
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = super::jittered_diamond(&mut rng);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    for r in 1..=3usize {
        net.pin_snr_db(NodeId(0), NodeId(r), 12.0);
        net.pin_snr_db(NodeId(r), NodeId(0), 12.0);
        net.pin_snr_db(NodeId(r), NodeId(4), 5.5);
        net.pin_snr_db(NodeId(4), NodeId(r), 5.5);
        for j in 1..=3usize {
            if j != r {
                net.pin_snr_db(NodeId(r), NodeId(j), 15.0);
            }
        }
    }
    net.pin_snr_db(NodeId(0), NodeId(4), -15.0);
    net.pin_snr_db(NodeId(4), NodeId(0), -15.0);
    net
}

/// One row of the sweep: a named fault class applied to one seam.
struct FaultCase {
    name: &'static str,
    mode: RoutingMode,
    faults: FaultPlan,
    delays: DelaySource,
}

fn cases() -> Vec<FaultCase> {
    let drop = FaultInjector::new(0.5, 0.0);
    let corrupt = FaultInjector::new(0.0, 0.5);
    let ss = RoutingMode::ExorSourceSync;
    let mk = |name, mode, faults, delays| FaultCase {
        name,
        mode,
        faults,
        delays,
    };
    vec![
        mk("baseline", ss, FaultPlan::none(), DelaySource::Oracle),
        mk(
            "data_drop",
            ss,
            FaultPlan {
                data: drop,
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
        mk(
            "data_corrupt",
            ss,
            FaultPlan {
                data: corrupt,
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
        mk(
            "ack_drop",
            ss,
            FaultPlan {
                ack: drop,
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
        mk(
            "ack_corrupt",
            ss,
            FaultPlan {
                ack: corrupt,
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
        mk(
            "header_drop",
            ss,
            FaultPlan {
                header: FaultInjector::new(0.8, 0.0),
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
        mk(
            "header_corrupt",
            ss,
            FaultPlan {
                header: FaultInjector::new(0.0, 0.8),
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
        mk("missing_delay", ss, FaultPlan::none(), DelaySource::Empty),
        mk(
            "sp_baseline",
            RoutingMode::SinglePath,
            FaultPlan::none(),
            DelaySource::Oracle,
        ),
        mk(
            "sp_ack_drop",
            RoutingMode::SinglePath,
            FaultPlan {
                ack: drop,
                ..FaultPlan::none()
            },
            DelaySource::Oracle,
        ),
    ]
}

/// See the module docs.
pub struct TestbedFault;

impl TestbedFault {
    /// One body for both the plain and observed paths. Each (case, trial)
    /// run fills its own recorder/registry, folded into `obs` in case
    /// order then trial order as a `{class}/t{trial}` track — so a fault
    /// sweep's trace shows every injected class as its own Perfetto
    /// process.
    fn run_with_obs(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        let cases = cases();
        let trials = ctx.trials(1);
        out.comment("Fault injection: per-class deliveries, protocol reactions, typed joins");
        out.columns(&[
            "class",
            "mode",
            "delivered",
            "data_frames",
            "joint_frames",
            "arq_retries",
            "acks_lost",
            "joins_ok",
            "join_no_detect",
            "join_malformed",
            "join_wrong_packet",
            "join_missing_delay",
            "faults_injected",
        ]);

        let observed = ctx.par_map(cases.len(), |c| {
            let case = &cases[c];
            (0..trials)
                .map(|t| {
                    let seed = 880_000 + t as u64;
                    let mut net = fault_network(seed);
                    let mut rng = StdRng::seed_from_u64(seed ^ (0xF00 + c as u64));
                    let cfg = TestbedConfig {
                        batch_size: 4,
                        payload_len: 96,
                        faults: case.faults,
                        delays: case.delays,
                        ..TestbedConfig::new(RateId::R12, case.mode)
                    };
                    let mut rec = obs.trial_recorder();
                    let mut reg = obs.trial_registry();
                    let outcome = run_transfer_observed(
                        &mut net,
                        &mut rng,
                        0,
                        4,
                        &[1, 2, 3],
                        &cfg,
                        &mut rec,
                        &mut reg,
                    )
                    .expect("diamond is routable");
                    (outcome, rec, reg)
                })
                .collect::<Vec<_>>()
        });
        let mut rows: Vec<Vec<TestbedOutcome>> = Vec::with_capacity(observed.len());
        for (case, per_trial) in cases.iter().zip(observed) {
            let mut outcomes = Vec::with_capacity(per_trial.len());
            for (t, (outcome, rec, reg)) in per_trial.into_iter().enumerate() {
                obs.add_track(format!("{}/t{t}", case.name), rec);
                obs.merge_metrics(&reg);
                outcomes.push(outcome);
            }
            rows.push(outcomes);
        }

        for (case, outcomes) in cases.iter().zip(&rows) {
            let sum = |f: &dyn Fn(&TestbedOutcome) -> u64| -> i64 {
                outcomes.iter().map(|o| f(o) as i64).sum()
            };
            out.row(vec![
                Value::s(case.name),
                Value::s(match case.mode {
                    RoutingMode::SinglePath => "single",
                    RoutingMode::Exor => "exor",
                    RoutingMode::ExorSourceSync => "exor+ss",
                }),
                Value::Int(outcomes.iter().map(|o| o.delivered as i64).sum()),
                Value::Int(sum(&|o| o.data_frames)),
                Value::Int(sum(&|o| o.joint_frames)),
                Value::Int(sum(&|o| o.arq_retries)),
                Value::Int(sum(&|o| o.acks_lost)),
                Value::Int(sum(&|o| o.joins.joined)),
                Value::Int(sum(&|o| o.joins.no_detect)),
                Value::Int(sum(&|o| o.joins.malformed_header)),
                Value::Int(sum(&|o| o.joins.wrong_packet)),
                Value::Int(sum(&|o| o.joins.missing_delay)),
                Value::Int(sum(&|o| o.faults.total())),
            ]);
        }
        out.comment(
            "every FaultInjector class (drop/corrupt x data/ack/header) plus the empty \
             delay database maps to its typed outcome above",
        );
    }
}

impl Scenario for TestbedFault {
    fn name(&self) -> &'static str {
        "testbed_fault"
    }

    fn title(&self) -> &'static str {
        "Event-driven testbed: fault-injection sweep over every protocol seam"
    }

    fn paper_ref(&self) -> &'static str {
        "§8 robustness"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        self.run_with_obs(ctx, out, &mut Obs::disabled());
    }
}

impl Observable for TestbedFault {
    fn run_observed(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        self.run_with_obs(ctx, out, obs);
    }
}
