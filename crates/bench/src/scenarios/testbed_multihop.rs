//! Event-driven testbed, multi-hop throughput: single path vs ExOR vs
//! ExOR+SourceSync over random lossy topologies — the §8.4 comparison
//! re-run with the *real* protocol stack instead of the analytic MAC.
//!
//! Each trial draws a five-node topology (source, three relays,
//! destination) with a healthy first hop, a marginal final hop and a dead
//! direct link — the Fig. 10 regime — then runs one batch through
//! `ssync_testbed::run_transfer` in each routing mode. Contention,
//! collisions, ACK losses, join failures and joint-frame gains all emerge
//! from the waveform medium; the medians cross-check the analytic
//! `fig18_opportunistic` ratios (ExOR > single path; ExOR+SourceSync ≥
//! 1.2× ExOR).
//!
//! Output: per-mode throughput CDFs plus median/ratio and protocol-event
//! summary lines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_dsp::stats::median;
use ssync_exp::scenario::emit_cdf;
use ssync_exp::{Ctx, Output, Scenario};
use ssync_mac::{DataFrame, MacFrame};
use ssync_obs::{Obs, Observable};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network, NodeId};
use ssync_testbed::{run_transfer_observed, Modem, RoutingMode, TestbedConfig, TestbedOutcome};

/// The data-frame payload both testbed scenarios run (map overhead
/// excluded; see `TestbedConfig::new`).
const PAYLOAD_LEN: usize = 384;

/// Measured delivery probability of `payload`-sized R12 DATA frames over
/// the directed link `tx → rx`, from `n` real modulate→superpose→decode
/// rounds (the paper's own link-selection method, §8).
fn measured_delivery(
    net: &mut Network,
    modem: &Modem,
    seed: u64,
    tx: usize,
    rx: usize,
    n: usize,
) -> f64 {
    let frame = MacFrame::Data(DataFrame {
        src: tx as u16,
        dst: rx as u16,
        seq: 0,
        retry: false,
        payload: ssync_testbed::packet_payload(0, PAYLOAD_LEN + 5),
    });
    let wave = modem.mac_waveform(&frame, RateId::R12);
    let mut ok = 0usize;
    for f in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x51D0 + f as u64));
        let got = modem.exchange(net, &mut rng, &[(NodeId(tx), wave.clone())], &[NodeId(rx)]);
        if got[0].1.is_some() {
            ok += 1;
        }
    }
    ok as f64 / n as f64
}

/// Nudges the pinned SNR of `a ↔ b` until the *measured* frame delivery
/// lands in `[lo, hi]` — the paper picked its testbed node pairs by
/// measured loss rate, not by SNR, and the multipath realisation moves
/// the effective operating point by several dB either way.
fn shape_link(
    net: &mut Network,
    modem: &Modem,
    seed: u64,
    a: usize,
    b: usize,
    mut snr: f64,
    (lo, hi): (f64, f64),
) {
    for step in 0..4 {
        net.pin_snr_db(NodeId(a), NodeId(b), snr);
        net.pin_snr_db(NodeId(b), NodeId(a), snr);
        let d = measured_delivery(net, modem, seed ^ (step as u64) << 8, a, b, 8);
        if d > hi {
            snr -= 1.5;
        } else if d < lo {
            snr += 1.5;
        } else {
            break;
        }
    }
}

/// Pins one trial topology's link budget: src 0, relays 1–3, dst 4, with
/// every protocol-relevant link shaped to a *measured* delivery band —
/// healthy first hop, ≈50 %-lossy final hop (the Fig. 10 regime where
/// sender diversity pays), clustered relays, dead direct link.
fn pin_topology(rng: &mut StdRng, net: &mut Network) {
    let modem = Modem::new(net.params.clone());
    let seed = rng.gen::<u64>();
    for r in 1..=3usize {
        let a = rng.gen_range(7.5..9.0);
        shape_link(net, &modem, seed ^ (r as u64), 0, r, a, (0.75, 1.0));
        let b = rng.gen_range(5.0..6.5);
        shape_link(net, &modem, seed ^ (0x40 + r as u64), r, 4, b, (0.1, 0.4));
    }
    for i in 1..=3usize {
        for j in i + 1..=3usize {
            let c = rng.gen_range(12.0..18.0); // clustered relays
            net.pin_snr_db(NodeId(i), NodeId(j), c);
            net.pin_snr_db(NodeId(j), NodeId(i), c);
        }
    }
    net.pin_snr_db(NodeId(0), NodeId(4), -15.0); // unusable direct link
    net.pin_snr_db(NodeId(4), NodeId(0), -15.0);
}

/// Builds the trial network: jittered diamond placement (real propagation
/// delays for the §4.3 compensation), testbed multipath, pinned budgets.
fn draw_network(seed: u64) -> Network {
    let params = OfdmParams::dot11a();
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = super::jittered_diamond(&mut rng);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::testbed(&params),
    );
    pin_topology(&mut rng, &mut net);
    net
}

fn mode_name(mode: RoutingMode) -> &'static str {
    match mode {
        RoutingMode::SinglePath => "single path",
        RoutingMode::Exor => "ExOR",
        RoutingMode::ExorSourceSync => "ExOR + SourceSync",
    }
}

fn mode_slug(mode: RoutingMode) -> &'static str {
    match mode {
        RoutingMode::SinglePath => "single",
        RoutingMode::Exor => "exor",
        RoutingMode::ExorSourceSync => "exor+ss",
    }
}

/// See the module docs.
pub struct TestbedMultihop;

impl TestbedMultihop {
    /// One body for both the plain and observed paths, so the rendered
    /// output cannot drift between them: each (topology, mode) run fills
    /// its own per-trial recorder/registry via
    /// [`run_transfer_observed`], folded into `obs` in trial-index order
    /// as a `topology{t}/{mode}` track.
    fn run_with_obs(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        let modes = [
            RoutingMode::SinglePath,
            RoutingMode::Exor,
            RoutingMode::ExorSourceSync,
        ];
        let topologies = ctx.trials(6);
        out.comment("Event-driven testbed: one batch per topology through the real stack");
        out.comment(
            "(CSMA/CA contention, ARQ, ExOR batch maps, JointSession joint frames \
             over the waveform medium)",
        );

        let observed = ctx.par_map(topologies, |t| {
            let seed = 770_000 + t as u64;
            let mut net = draw_network(seed);
            modes
                .iter()
                .enumerate()
                .map(|(m, &mode)| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0xA0 + m as u64));
                    let mut rec = obs.trial_recorder();
                    let mut reg = obs.trial_registry();
                    let outcome = run_transfer_observed(
                        &mut net,
                        &mut rng,
                        0,
                        4,
                        &[1, 2, 3],
                        &TestbedConfig::new(RateId::R12, mode),
                        &mut rec,
                        &mut reg,
                    )
                    .expect("diamond is routable");
                    (outcome, rec, reg)
                })
                .collect::<Vec<_>>()
        });
        let mut results: Vec<Vec<TestbedOutcome>> = Vec::with_capacity(observed.len());
        for (t, per_mode) in observed.into_iter().enumerate() {
            let mut outcomes = Vec::with_capacity(per_mode.len());
            for ((outcome, rec, reg), &mode) in per_mode.into_iter().zip(&modes) {
                obs.add_track(format!("topology{t}/{}", mode_slug(mode)), rec);
                obs.merge_metrics(&reg);
                outcomes.push(outcome);
            }
            results.push(outcomes);
        }

        let mut medians = Vec::new();
        for (m, &mode) in modes.iter().enumerate() {
            let tp: Vec<f64> = results.iter().map(|r| r[m].throughput_bps / 1e6).collect();
            out.blank();
            emit_cdf(out, mode_name(mode), &tp);
            let frames: u64 = results.iter().map(|r| r[m].data_frames).sum();
            let joint: u64 = results.iter().map(|r| r[m].joint_frames).sum();
            let collisions: u64 = results.iter().map(|r| r[m].collisions).sum();
            let retries: u64 = results.iter().map(|r| r[m].arq_retries).sum();
            let joined: u64 = results.iter().map(|r| r[m].joins.joined).sum();
            let join_fail: u64 = results.iter().map(|r| r[m].joins.failures()).sum();
            out.comment(format!(
                "{}: data frames {frames}, joint frames {joint} (joins ok {joined} / failed \
                 {join_fail}), collisions {collisions}, ARQ retries {retries}",
                mode_name(mode)
            ));
            medians.push(median(&tp));
        }
        out.blank();
        out.comment(format!(
            "medians: single {:.3}, ExOR {:.3}, ExOR+SourceSync {:.3} Mbps",
            medians[0], medians[1], medians[2]
        ));
        out.comment(format!(
            "gains: ExOR/single {:.2}x (fig18 analytic 1.26-1.4x), SourceSync/ExOR {:.2}x \
             (fig18 analytic 1.35-1.45x), SourceSync/single {:.2}x (fig18 analytic 1.7-2x)",
            medians[1] / medians[0].max(1e-9),
            medians[2] / medians[1].max(1e-9),
            medians[2] / medians[0].max(1e-9),
        ));
    }
}

impl Scenario for TestbedMultihop {
    fn name(&self) -> &'static str {
        "testbed_multihop"
    }

    fn title(&self) -> &'static str {
        "Event-driven testbed: multi-hop throughput, single path vs ExOR vs ExOR+SourceSync"
    }

    fn paper_ref(&self) -> &'static str {
        "§8.4 / Fig. 18"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        self.run_with_obs(ctx, out, &mut Obs::disabled());
    }
}

impl Observable for TestbedMultihop {
    fn run_observed(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        self.run_with_obs(ctx, out, obs);
    }
}
