//! Ablation: the Smart Combiner and pilot sharing (paper §5–6 design
//! choices), measured on the full sample-level joint chain.
//!
//! * `smart_combiner = false`: both senders transmit identical symbols —
//!   the §6 thought experiment; decodes fail whenever the two channels
//!   land near phase opposition.
//! * `pilot_sharing = false`: both senders drive every pilot; the receiver
//!   can only track a single common phase, so the senders' *relative*
//!   residual rotation goes uncorrected and long frames die.
//!
//! Output: TSV `config  decode_rate  mean_evm_db  n`.

use crate::{pin_all_snrs, random_payload, run_once, COSENDER, LEAD, RECEIVER};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_channel::{FloorPlan, Position};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network};

/// See the module docs.
pub struct AblationCombiner;

impl Scenario for AblationCombiner {
    fn name(&self) -> &'static str {
        "ablation_combiner"
    }

    fn title(&self) -> &'static str {
        "Smart Combiner and shared-pilot ablation on the full joint chain"
    }

    fn paper_ref(&self) -> &'static str {
        "§5–6 validation"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::dot11a();
        let models = ChannelModels::testbed(&params);
        let trials = ctx.trials(30);
        let snr_db = 15.0;

        let configs = [
            ("full_sourcesync", true, true),
            ("no_smart_combiner", false, true),
            ("no_pilot_sharing", true, false),
        ];
        out.comment(format!(
            "Ablation: Smart Combiner and shared pilots at {snr_db} dB, R12, 700-byte frames"
        ));
        out.columns(&["config", "decode_rate", "mean_evm_db", "n"]);
        // One job per (config, trial). Trial seeds are intentionally
        // config-independent (the legacy behaviour): every configuration
        // sees the same placements and noise.
        let results = ctx.par_map(configs.len() * trials, |i| {
            let ((_, smart, sharing), t) = (configs[i / trials], i % trials);
            let seed = 400_000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = FloorPlan::testbed();
            let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
            let mut net = Network::build(&mut rng, &params, &positions, &models);
            pin_all_snrs(&mut net, snr_db);
            let payload = random_payload(&mut rng, 700);
            let mut db = DelayDatabase::new();
            if !db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 2) {
                return None;
            }
            let sol = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER])?;
            let cfg = JointConfig {
                rate: RateId::R12,
                cp_extension: 12,
                smart_combiner: smart,
                pilot_sharing: sharing,
                ..Default::default()
            };
            let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, sol.waits[0]);
            let report = &out.reports[0];
            if !report.header_ok || report.co_channels[0].is_none() {
                return None;
            }
            let decoded = report.payload.as_deref() == Some(&payload[..]);
            let evm = report
                .stats
                .evm_snr_db
                .is_finite()
                .then_some(report.stats.evm_snr_db);
            Some((decoded, evm))
        });

        for ((name, _, _), chunk) in configs.iter().zip(results.chunks(trials)) {
            let mut decoded = 0usize;
            let mut evms = Vec::new();
            let mut n = 0usize;
            for (ok, evm) in chunk.iter().flatten() {
                n += 1;
                if *ok {
                    decoded += 1;
                }
                if let Some(e) = evm {
                    evms.push(*e);
                }
            }
            out.row(vec![
                Value::s(*name),
                Value::F(decoded as f64 / n.max(1) as f64, 2),
                Value::F(ssync_dsp::stats::mean(&evms), 2),
                Value::Int(n as i64),
            ]);
        }
    }
}
