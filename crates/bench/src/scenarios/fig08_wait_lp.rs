//! Figure 8: the multi-receiver wait-time conflict and the minimax LP.
//!
//! With one receiver a co-sender's wait aligns the joint transmission
//! perfectly; with several receivers perfect alignment is generally
//! impossible (paper §4.6, Fig. 8). This scenario first reproduces the
//! paper's concrete two-receiver example, then sweeps the receiver count
//! over random placements and reports the mean residual misalignment the
//! LP leaves behind versus the naive align-at-receiver-0 policy.
//!
//! Output: TSV `n_receivers  mean_lp_residual_ns  mean_naive_residual_ns`.
//!
//! Parallelisation note: the legacy binary drew every placement from one
//! sequential RNG stream, so the draws stay serial (they are trivially
//! cheap) and only the LP solves fan out across workers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_linprog::MisalignmentProblem;

/// See the module docs.
pub struct Fig08WaitLp;

impl Scenario for Fig08WaitLp {
    fn name(&self) -> &'static str {
        "fig08_wait_lp"
    }

    fn title(&self) -> &'static str {
        "Multi-receiver wait-time optimisation: minimax LP vs naive alignment"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 8 + §4.6"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        // Paper Fig. 8 worked example: aligning at Rx1 needs the co-sender
        // 100 ns early, aligning at Rx2 needs it 100 ns late; the optimum
        // splits the difference with a 100 ns residual.
        let example = MisalignmentProblem {
            lead_delays: vec![50e-9, 200e-9],
            cosender_delays: vec![vec![150e-9, 100e-9]],
        };
        let sol = example.solve();
        out.comment("Figure 8: multi-receiver wait-time optimisation (paper section 4.6)");
        out.comment(format!(
            "worked example: wait = {:.1} ns, residual = {:.1} ns (paper: 0, 100)",
            sol.waits[0] * 1e9,
            sol.max_misalignment * 1e9
        ));

        let trials = ctx.trials(200);
        let mut rng = StdRng::seed_from_u64(8);
        out.comment(format!(
            "{trials} random 2-cosender placements per receiver count"
        ));
        out.columns(&[
            "n_receivers",
            "mean_lp_residual_ns",
            "mean_naive_residual_ns",
        ]);
        // Serial draw phase: the exact RNG consumption order of the legacy
        // nested loop (receiver count outer, trial inner).
        let mut problems = Vec::with_capacity(6 * trials);
        for n_rx in 1..=6usize {
            for _ in 0..trials {
                // Propagation delays at indoor testbed scale: 10-300 ns.
                problems.push(MisalignmentProblem {
                    lead_delays: (0..n_rx).map(|_| rng.gen_range(10e-9..300e-9)).collect(),
                    cosender_delays: (0..2)
                        .map(|_| (0..n_rx).map(|_| rng.gen_range(10e-9..300e-9)).collect())
                        .collect(),
                });
            }
        }
        // Parallel solve phase: each job solves one placement's LP and the
        // naive align-at-receiver-0 policy.
        let residuals = ctx.par_map(problems.len(), |i| {
            let p = &problems[i];
            let lp = p.solve().max_misalignment;
            let naive: Vec<f64> = (0..2)
                .map(|s| p.lead_delays[0] - p.cosender_delays[s][0])
                .collect();
            (lp, p.misalignment_of(&naive))
        });
        for (j, chunk) in residuals.chunks(trials).enumerate() {
            let n_rx = j + 1;
            let (mut lp_sum, mut naive_sum) = (0.0, 0.0);
            for (lp, naive) in chunk {
                lp_sum += lp;
                naive_sum += naive;
            }
            out.row(vec![
                Value::Int(n_rx as i64),
                Value::F(lp_sum / trials as f64 * 1e9, 3),
                Value::F(naive_sum / trials as f64 * 1e9, 3),
            ]);
        }
    }
}
