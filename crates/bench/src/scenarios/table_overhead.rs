//! §4.4 overhead table: synchronization overhead of a joint frame.
//!
//! The paper's example: 1460-byte packets at 12 Mbps — 1.7 % overhead for
//! two concurrent senders, 2.8 % for five. Regenerated closed-form from
//! the joint-frame timeline (SIFS + 2 training symbols per co-sender over
//! the whole frame).
//!
//! Output: TSV `n_senders  overhead_percent` for both numerologies.

use ssync_core::JointTimeline;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};

/// See the module docs.
pub struct TableOverhead;

impl Scenario for TableOverhead {
    fn name(&self) -> &'static str {
        "table_overhead"
    }

    fn title(&self) -> &'static str {
        "Closed-form synchronization overhead of a joint frame vs sender count"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.4 table"
    }

    fn run(&self, _ctx: &Ctx, out: &mut Output) {
        out.comment("Sync overhead of a joint frame, 1460-byte payload (+4 CRC) at 12 Mbps");
        out.comment("paper (802.11 numerology): 2 senders 1.7%, 5 senders 2.8%");
        out.columns(&["numerology", "n_senders", "overhead_percent"]);
        for params in [OfdmParams::dot11a(), OfdmParams::wiglan()] {
            for n_senders in 2..=5usize {
                let t = JointTimeline::new(&params, 1464, RateId::R12, 0, n_senders - 1);
                out.row(vec![
                    Value::s(params.name),
                    Value::Int(n_senders as i64),
                    Value::F(t.sync_overhead() * 100.0, 2),
                ]);
            }
        }
    }
}
