//! Figure 5: unwrapped channel phase per subcarrier, with and without an
//! induced detection-delay offset ∆, in a flat fading channel.
//!
//! Demonstrates the property (paper Eq. 1) that a time-domain detection
//! offset appears as a frequency-domain phase slope 2π∆/N per subcarrier —
//! the foundation of the Symbol-Level Synchronizer.
//!
//! Output: TSV `subcarrier  phase_at_detection  phase_at_detection_plus_delta`.

use ssync_dsp::delay::fractional_delay;
use ssync_dsp::stats::unwrap_phases;
use ssync_dsp::Fft;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::chanest::estimate_from_lts;
use ssync_phy::preamble::{preamble_waveform, PreambleLayout};
use ssync_phy::OfdmParams;

/// See the module docs.
pub struct Fig05PhaseSlope;

impl Scenario for Fig05PhaseSlope {
    fn name(&self) -> &'static str {
        "fig05_phase_slope"
    }

    fn title(&self) -> &'static str {
        "Unwrapped channel phase vs subcarrier with an induced detection offset (Eq. 1)"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 5"
    }

    fn run(&self, _ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::dot11a();
        let fft = Fft::new(params.fft_size);
        let pre = preamble_waveform(&params, &fft);
        let layout = PreambleLayout::of(&params);
        let delta = 4.0; // induced detection offset, samples

        // The receiver estimates the channel twice: once with its window at
        // the detected position, once processing the packet as if detected
        // ∆ samples later (the paper's "Initial Detection + ∆" curve).
        let guard = 16usize;
        let rx = fractional_delay(&pre, guard as f64);
        let est0 = estimate_from_lts(&params, &fft, &rx, guard + layout.lts_start());
        let est_delta = estimate_from_lts(
            &params,
            &fft,
            &rx,
            guard + layout.lts_start() - delta as usize,
        );

        let phases0: Vec<f64> = est0.values.iter().map(|v| v.arg()).collect();
        let phases_d: Vec<f64> = est_delta.values.iter().map(|v| v.arg()).collect();
        // Unwrap each contiguous carrier run (the occupied band has a DC gap).
        let u0 = unwrap_phases(&phases0);
        let ud = unwrap_phases(&phases_d);

        out.comment("Figure 5: unwrapped channel phase vs subcarrier (flat channel)");
        out.comment(format!("induced detection offset delta = {delta} samples"));
        out.comment(format!(
            "expected extra slope = 2*pi*delta/N = {:.5} rad/subcarrier",
            2.0 * std::f64::consts::PI * delta / params.fft_size as f64
        ));
        out.columns(&["subcarrier", "phase_initial", "phase_initial_plus_delta"]);
        for (i, k) in est0.carriers.iter().enumerate() {
            out.row(vec![
                Value::Int(*k as i64),
                Value::F(u0[i], 5),
                Value::F(ud[i], 5),
            ]);
        }
        // Report the measured slopes like the paper's caption.
        let xs: Vec<f64> = est0.carriers.iter().map(|k| *k as f64).collect();
        let s0 = ssync_dsp::stats::linear_regression_slope(&xs, &u0);
        let sd = ssync_dsp::stats::linear_regression_slope(&xs, &ud);
        out.comment(format!("measured slope initial = {s0:.5} rad/subcarrier"));
        out.comment(format!("measured slope +delta  = {sd:.5} rad/subcarrier"));
        // delay_from_slope convention: a *negative* slope means a *positive*
        // delay (late signal relative to the FFT window).
        out.comment(format!(
            "implied delta = {:.3} samples (true {delta})",
            -(sd - s0) * params.fft_size as f64 / (2.0 * std::f64::consts::PI)
        ));
    }
}
