//! Declarative-sweep demo: residual misalignment left by the §4.6 minimax
//! LP as the receiver and co-sender counts grow.
//!
//! This is the template for standing up new sweeps (wider sync-error /
//! topology studies à la AirSync) without writing another binary: declare
//! a [`Sweep`] grid, write a per-trial metric taking all randomness from
//! the derived [`Job::seed`](ssync_exp::Job), aggregate. The whole
//! experiment below is ~30 lines and runs on all cores.
//!
//! Output: TSV `n_receivers  n_cosenders  mean_residual_ns  p95_residual_ns
//! ci95_lo_ns  ci95_hi_ns`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_exp::agg::{mean_ci_normal, percentile, Summary};
use ssync_exp::{Ctx, Output, Scenario, Sweep, Value};
use ssync_linprog::MisalignmentProblem;

/// See the module docs.
pub struct SweepWaitResidual;

impl Scenario for SweepWaitResidual {
    fn name(&self) -> &'static str {
        "sweep_wait_residual"
    }

    fn title(&self) -> &'static str {
        "Declarative sweep demo: LP residual misalignment over receivers x co-senders"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.6 (extended)"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let sweep = Sweep::new(0x0A15_C0DE)
            .axis_ints("n_receivers", 1..=6)
            .axis_ints("n_cosenders", [1, 2, 3])
            .trials(ctx.trials(100));
        out.comment("Sweep: residual misalignment of the minimax wait-time LP");
        out.comment(format!(
            "grid: n_receivers x n_cosenders, {} trials/point, indoor delays 10-300 ns",
            ctx.trials(100)
        ));
        out.columns(&[
            "n_receivers",
            "n_cosenders",
            "mean_residual_ns",
            "p95_residual_ns",
            "ci95_lo_ns",
            "ci95_hi_ns",
        ]);
        for (point, residuals) in sweep.run(ctx, |job| {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let n_rx = job.point.get_usize("n_receivers");
            let n_co = job.point.get_usize("n_cosenders");
            let draw = |rng: &mut StdRng| rng.gen_range(10e-9..300e-9);
            let p = MisalignmentProblem {
                lead_delays: (0..n_rx).map(|_| draw(&mut rng)).collect(),
                cosender_delays: (0..n_co)
                    .map(|_| (0..n_rx).map(|_| draw(&mut rng)).collect())
                    .collect(),
            };
            p.solve().max_misalignment * 1e9
        }) {
            let s = Summary::of(&residuals);
            let ci = mean_ci_normal(&residuals, 0.95);
            out.row(vec![
                Value::Int(point.get_usize("n_receivers") as i64),
                Value::Int(point.get_usize("n_cosenders") as i64),
                Value::F(s.mean, 3),
                Value::F(percentile(&residuals, 95.0), 3),
                Value::F(ci.lo, 3),
                Value::F(ci.hi, 3),
            ]);
        }
    }
}
