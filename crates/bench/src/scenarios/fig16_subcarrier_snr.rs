//! Figure 16: per-subcarrier SNR of each sender alone vs SourceSync joint
//! transmission, in high/medium/low SNR regimes.
//!
//! The paper's point: the joint profile is not only higher on average but
//! *flatter* — the senders' independent frequency-selective fades fill
//! each other in, which is what lets convolutionally-coded 802.11 use a
//! higher bit rate.
//!
//! Output: three TSV blocks (`high`, `medium`, `low`), each
//! `freq_mhz  sender1_db  sender2_db  joint_db`, plus flatness statistics.

use crate::{pin_all_snrs, random_payload, run_once, COSENDER, LEAD, RECEIVER};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_channel::{FloorPlan, Position};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_dsp::stats::{db_from_linear, std_dev};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network};

/// See the module docs.
pub struct Fig16SubcarrierSnr;

impl Scenario for Fig16SubcarrierSnr {
    fn name(&self) -> &'static str {
        "fig16_subcarrier_snr"
    }

    fn title(&self) -> &'static str {
        "Per-subcarrier SNR: each sender alone vs the joint profile, three regimes"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 16"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::dot11a();
        let models = ChannelModels::testbed(&params);
        let cfg = JointConfig {
            rate: RateId::R6,
            cp_extension: 8,
            ..Default::default()
        };

        out.comment("Figure 16: per-subcarrier SNR — each sender alone vs SourceSync");
        let regimes = [("high", 16.0, 11u64), ("medium", 9.0, 23), ("low", 4.0, 37)];
        // Each regime is one independent job building its own output
        // fragment; fragments are appended in regime order.
        let fragments = ctx.par_map(regimes.len(), |i| {
            let (regime, snr_db, seed) = regimes[i];
            let mut frag = Output::new();
            // Controlled per-sender mean SNR, random multipath (the fades).
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = FloorPlan::testbed();
            let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
            let mut net = Network::build(&mut rng, &params, &positions, &models);
            // Probe delays at a comfortable SNR (geometry-only measurement),
            // then pin the regime under test.
            pin_all_snrs(&mut net, 25.0);
            let payload = random_payload(&mut rng, 80);
            let mut db = DelayDatabase::new();
            if !db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 3) {
                frag.comment(format!("{regime}: probes failed, skipping"));
                return frag;
            }
            pin_all_snrs(&mut net, snr_db);
            let Some(sol) = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER]) else {
                return frag;
            };
            let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, sol.waits[0]);
            let report = &out.reports[0];
            let (Some(lead_est), Some(co_est)) =
                (report.lead_channel.as_ref(), report.co_channels[0].as_ref())
            else {
                frag.comment(format!("{regime}: joint frame failed, skipping"));
                return frag;
            };
            let n0 = lead_est.noise_power.max(1e-15);
            frag.comment(format!(
                "regime: {regime} (per-sender mean SNR pinned to {snr_db} dB)"
            ));
            frag.columns(&["freq_mhz", "sender1_db", "sender2_db", "joint_db"]);
            let spacing_mhz = params.subcarrier_spacing_hz() / 1e6;
            let mut s1 = Vec::new();
            let mut s2 = Vec::new();
            let mut joint = Vec::new();
            for (j, &k) in params.data_carriers.iter().enumerate() {
                let h1 = lead_est.gain(k).unwrap();
                let h2 = co_est.gain(k).unwrap();
                let v1 = db_from_linear(h1.norm_sqr() / n0);
                let v2 = db_from_linear(h2.norm_sqr() / n0);
                let vj = report.effective_snr_db[j];
                frag.row(vec![
                    Value::F(k as f64 * spacing_mhz, 2),
                    Value::F(v1, 2),
                    Value::F(v2, 2),
                    Value::F(vj, 2),
                ]);
                s1.push(v1);
                s2.push(v2);
                joint.push(vj);
            }
            frag.comment(format!(
                "flatness (std dev of per-carrier SNR, dB): sender1 {:.2}, sender2 {:.2}, joint {:.2}",
                std_dev(&s1),
                std_dev(&s2),
                std_dev(&joint)
            ));
            frag
        });
        for frag in fragments {
            out.append(frag);
        }
    }
}
