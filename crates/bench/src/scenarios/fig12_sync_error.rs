//! Figure 12: 95th-percentile synchronization error vs SNR.
//!
//! For random (lead, co-sender, receiver) placements with all links pinned
//! to a target SNR, SourceSync runs its full loop: probe-based delay
//! measurement, LP waits, a few §4.5 tracking frames, then a measurement
//! phase. The synchronization error of a placement is the
//! repetition-averaged misalignment measurement (the paper's
//! high-accuracy estimator, realised as an average over `REPS` frames),
//! and the simulator's exact ground truth is reported alongside.
//!
//! Paper target: ≤ 20 ns at the 95th percentile across operational SNRs.
//!
//! Output: TSV `snr_db  p95_measured_ns  p95_true_ns  n_placements`.

use crate::{converged_joint, pinned_snr_network, random_payload, run_once};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_core::{DelayDatabase, JointConfig};
use ssync_dsp::stats::percentile;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::ChannelModels;

const REPS: usize = 5;

/// See the module docs.
pub struct Fig12SyncError;

impl Scenario for Fig12SyncError {
    fn name(&self) -> &'static str {
        "fig12_sync_error"
    }

    fn title(&self) -> &'static str {
        "95th-percentile synchronization error vs SNR over random placements"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 12"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::wiglan();
        let models = ChannelModels::testbed(&params);
        let cfg = JointConfig {
            rate: RateId::R6,
            cp_extension: 16,
            ..Default::default()
        };
        let placements = ctx.trials(12);

        out.comment("Figure 12: 95th percentile synchronization error vs SNR");
        out.comment("numerology: wiglan (128 Msps; 1 sample = 7.8125 ns)");
        out.columns(&["snr_db", "p95_measured_ns", "p95_true_ns", "n"]);

        // One job per (SNR step, placement); every seed is the legacy
        // binary's formula, a pure function of the job coordinates.
        let samples = ctx.par_map(9 * placements, |i| {
            let (snr_step, p) = (i / placements, i % placements);
            let snr_db = 3.0 * snr_step as f64;
            let seed = 1000 * snr_step as u64 + p as u64;
            let mut net = pinned_snr_network(&params, &models, snr_db, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
            let payload = random_payload(&mut rng, 60);
            // Converge (probes + tracking warmup), then measure.
            let (_, wait) = converged_joint(&mut net, &mut rng, &payload, &cfg, 3, 3)?;
            let mut db = DelayDatabase::new();
            // The measurement frames reuse the converged wait; the delay
            // database is only needed by the co-sender for d(lead, co).
            if !db.measure(&mut net, &mut rng, crate::LEAD, crate::COSENDER, 2) {
                return None;
            }
            let mut meas = Vec::new();
            let mut truth = Vec::new();
            for _ in 0..REPS {
                let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, wait);
                if let Some(m) = out.reports[0].measured_misalign_s[0] {
                    meas.push(m);
                }
                let t = out.true_misalign_s[0][0];
                if t.is_finite() {
                    truth.push(t);
                }
            }
            if meas.is_empty() || truth.is_empty() {
                return None;
            }
            // The repetition estimator: average over frames.
            Some((
                ssync_dsp::stats::mean(&meas).abs() * 1e9,
                ssync_dsp::stats::mean(&truth).abs() * 1e9,
            ))
        });

        for (snr_step, chunk) in samples.chunks(placements).enumerate() {
            let snr_db = 3.0 * snr_step as f64;
            let mut measured_ns = Vec::new();
            let mut true_ns = Vec::new();
            for (m, t) in chunk.iter().flatten() {
                measured_ns.push(*m);
                true_ns.push(*t);
            }
            if measured_ns.is_empty() {
                out.row(vec![
                    Value::F(snr_db, 0),
                    Value::s("NA"),
                    Value::s("NA"),
                    Value::Int(0),
                ]);
                continue;
            }
            out.row(vec![
                Value::F(snr_db, 0),
                Value::F(percentile(&measured_ns, 95.0), 2),
                Value::F(percentile(&true_ns, 95.0), 2),
                Value::Int(measured_ns.len() as i64),
            ]);
        }
    }
}
