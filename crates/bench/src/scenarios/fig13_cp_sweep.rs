//! Figure 13: joint-transmission SNR vs cyclic-prefix length, SourceSync
//! vs an unsynchronized baseline.
//!
//! Two transmitters in a line-of-sight-like configuration (strong direct
//! path, paper-matched multipath spread) jointly transmit at each CP
//! length; the receiver's decision-directed EVM SNR of the combined data
//! is recorded. SourceSync compensates delays; the baseline joins on its
//! raw detection instant. The paper's result: SourceSync reaches ~95 % of
//! peak SNR at a CP of ~15 samples (117 ns, set by the multipath spread
//! alone — Fig. 14), the baseline needs ~60 samples (469 ns).
//!
//! Output: TSV `cp_ns  snr_sourcesync_db  snr_baseline_db`.

use crate::{pin_all_snrs, random_payload, run_once, COSENDER, LEAD, RECEIVER};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_channel::{FloorPlan, Position};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network};

/// See the module docs.
pub struct Fig13CpSweep;

impl Scenario for Fig13CpSweep {
    fn name(&self) -> &'static str {
        "fig13_cp_sweep"
    }

    fn title(&self) -> &'static str {
        "Joint SNR vs cyclic-prefix length, SourceSync vs unsynchronized baseline"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 13"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::wiglan();
        let models = ChannelModels::testbed(&params);
        let trials = ctx.trials(6);
        let snr_db = 25.0;
        let cps: Vec<usize> = (0..=80usize).step_by(5).collect();

        out.comment("Figure 13: joint SNR vs CP, SourceSync vs unsynchronized baseline");
        out.comment(format!(
            "numerology: wiglan; links pinned to {snr_db} dB; EVM-based SNR"
        ));
        out.columns(&["cp_ns", "sourcesync_db", "baseline_db"]);

        // One job per (CP length, trial); the seed is the legacy formula
        // over the CP value itself, not its index.
        let results = ctx.par_map(cps.len() * trials, |i| {
            let (cp_samples, t) = (cps[i / trials], i % trials);
            let seed = (cp_samples * 100 + t) as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = FloorPlan::testbed();
            let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
            let mut net = Network::build(&mut rng, &params, &positions, &models);
            pin_all_snrs(&mut net, snr_db);
            let payload = random_payload(&mut rng, 120);
            let mut db = DelayDatabase::new();
            if !db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 2) {
                return (None, None);
            }
            let Some(sol) = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER]) else {
                return (None, None);
            };
            // The CP under test replaces the base CP: set extension so that
            // base + ext = cp_samples (clamp at 0 by shrinking the base
            // through a re-parameterised numerology).
            let swept = params.with_cp(1.max(cp_samples));
            let mut swept_net = net;
            swept_net.params = swept.clone();
            let cfg_ss = JointConfig {
                rate: RateId::R12,
                cp_extension: 0,
                ..Default::default()
            };
            let out = run_once(
                &mut swept_net,
                &mut rng,
                &payload,
                &cfg_ss,
                &db,
                sol.waits[0],
            );
            let ss = out.reports[0]
                .header_ok
                .then(|| out.reports[0].stats.evm_snr_db);
            let cfg_base = JointConfig {
                rate: RateId::R12,
                cp_extension: 0,
                delay_compensation: false,
                ..Default::default()
            };
            let out = run_once(&mut swept_net, &mut rng, &payload, &cfg_base, &db, 0.0);
            let base = out.reports[0]
                .header_ok
                .then(|| out.reports[0].stats.evm_snr_db);
            (ss, base)
        });

        let med = |v: &Vec<f64>| {
            if v.is_empty() {
                f64::NAN
            } else {
                ssync_dsp::stats::median(v)
            }
        };
        for (j, chunk) in results.chunks(trials).enumerate() {
            let ss_vals: Vec<f64> = chunk.iter().filter_map(|(s, _)| *s).collect();
            let base_vals: Vec<f64> = chunk.iter().filter_map(|(_, b)| *b).collect();
            let cp_ns = cps[j] as f64 * params.sample_period_fs() as f64 * 1e-6;
            out.row(vec![
                Value::F(cp_ns, 1),
                Value::F(med(&ss_vals), 2),
                Value::F(med(&base_vals), 2),
            ]);
        }
    }
}
