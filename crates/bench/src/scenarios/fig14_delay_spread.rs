//! Figure 14: time-domain power-delay profile of a single sender's channel.
//!
//! One draw of the paper-matched indoor multipath profile at the WiGLAN
//! sample rate; the paper observes ~15 significant taps (117 ns), which
//! sets the CP SourceSync needs after synchronization (Fig. 13's knee).
//!
//! Output: TSV `tap_index  |h|^2` plus summary statistics over many draws.
//!
//! Parallelisation note: every draw consumes one sequential RNG stream
//! (the legacy binary's), and drawing a channel is microseconds of work,
//! so this scenario runs serially by design.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_channel::MultipathProfile;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::OfdmParams;

/// See the module docs.
pub struct Fig14DelaySpread;

impl Scenario for Fig14DelaySpread {
    fn name(&self) -> &'static str {
        "fig14_delay_spread"
    }

    fn title(&self) -> &'static str {
        "Power-delay profile and significant-tap statistics of the multipath model"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 14"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::wiglan();
        let profile = MultipathProfile::testbed(params.sample_rate_hz);
        let mut rng = StdRng::seed_from_u64(42);

        // A representative single realisation, scaled like the paper's plot
        // (which shows |H|² up to ~2.2 with unit-ish mean).
        let ch = profile.draw(&mut rng);
        out.comment("Figure 14: delay spread of a single sender (wiglan, 128 Msps)");
        out.columns(&["tap_index", "power"]);
        let scale = ch.taps.len() as f64; // display scale: mean tap power ≈ 1
        for (i, t) in ch.taps.iter().enumerate() {
            out.row(vec![
                Value::Int(i as i64),
                Value::F(t.norm_sqr() * scale, 4),
            ]);
        }

        // Significant-tap statistics across draws.
        let n = ctx.trials(200);
        let counts: Vec<f64> = (0..n)
            .map(|_| profile.draw(&mut rng).significant_taps(0.95) as f64)
            .collect();
        out.comment(format!(
            "mean significant taps (95% energy) over {n} draws: {:.1}",
            ssync_dsp::stats::mean(&counts)
        ));
        out.comment(format!(
            "= {:.0} ns at 128 Msps (paper: ~15 taps = 117 ns)",
            ssync_dsp::stats::mean(&counts) * params.sample_period_fs() as f64 * 1e-6
        ));
    }
}
