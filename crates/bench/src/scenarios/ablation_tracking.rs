//! Ablation: §4.5 delay tracking under node mobility.
//!
//! The co-sender's propagation delay to the receiver drifts over a
//! session (the receiver walks ~0.5 m between frames). With tracking, the
//! ACK-fed wait updates follow the drift; without it, the initial
//! probe-measured wait goes stale and the misalignment grows without
//! bound — exactly why §4.5 exists.
//!
//! Output: TSV `frame  |misalign|_tracked_ns  |misalign|_static_ns`.

use crate::{pin_all_snrs, random_payload, run_once, COSENDER, LEAD, RECEIVER};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_channel::{FloorPlan, Position};
use ssync_core::{tracking_update, DelayDatabase, JointConfig};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network, NodeId};

/// Femtoseconds of one-way delay drift per frame (≈0.45 m of motion).
const DRIFT_FS_PER_FRAME: u64 = 1_500_000;

fn drift(net: &mut Network, a: NodeId, b: NodeId) {
    for (x, y) in [(a, b), (b, a)] {
        if let Some(link) = net.medium.link_mut(x, y) {
            link.delay_fs += DRIFT_FS_PER_FRAME;
        }
    }
}

/// See the module docs.
pub struct AblationTracking;

impl Scenario for AblationTracking {
    fn name(&self) -> &'static str {
        "ablation_tracking"
    }

    fn title(&self) -> &'static str {
        "Delay tracking under mobility: ACK-fed wait updates vs a static wait"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.5 validation"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::wiglan();
        let models = ChannelModels::testbed(&params);
        let n_frames = 12usize;
        let cfg = JointConfig {
            rate: RateId::R6,
            cp_extension: 16,
            ..Default::default()
        };

        let run = |track: bool| -> Vec<f64> {
            let seed = 777u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = FloorPlan::testbed();
            let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
            let mut net = Network::build(&mut rng, &params, &positions, &models);
            pin_all_snrs(&mut net, 18.0);
            let mut db = DelayDatabase::new();
            assert!(db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 3));
            let mut wait = db
                .wait_solution(LEAD, &[COSENDER], &[RECEIVER])
                .unwrap()
                .waits[0];
            let mut series = Vec::new();
            for _ in 0..n_frames {
                let payload = random_payload(&mut rng, 60);
                let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, wait);
                let m = out.reports[0].measured_misalign_s[0];
                series.push(out.true_misalign_s[0][0].abs() * 1e9);
                if track {
                    if let Some(m) = m {
                        wait = tracking_update(wait, m);
                    }
                }
                // The receiver keeps moving away from the co-sender.
                drift(&mut net, COSENDER, RECEIVER);
                let _ = rng.gen::<u64>(); // decorrelate noise across frames
            }
            series
        };

        // The two arms are independent sessions — one worker each.
        let mut arms = ctx.par_map(2, |i| run(i == 0));
        let static_wait = arms.pop().unwrap();
        let tracked = arms.pop().unwrap();
        out.comment("Ablation: §4.5 delay tracking under mobility");
        out.comment(format!(
            "receiver drifts {:.0} ns of path per frame",
            DRIFT_FS_PER_FRAME as f64 * 1e-6
        ));
        out.columns(&["frame", "tracked_ns", "static_ns"]);
        for (i, (t, s)) in tracked.iter().zip(&static_wait).enumerate() {
            out.row(vec![Value::Int(i as i64), Value::F(*t, 1), Value::F(*s, 1)]);
        }
        out.comment(format!(
            "final |misalignment|: tracked {:.1} ns vs static {:.1} ns",
            tracked.last().unwrap(),
            static_wait.last().unwrap()
        ));
    }
}
