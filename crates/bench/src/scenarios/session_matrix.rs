//! `session_matrix`: the N-co-sender × M-receiver protocol scan the
//! monolithic driver could never express.
//!
//! For each (co-sender count, SNR) cell, random testbed placements run a
//! full staged [`JointSession`]: probe-based delay measurement, the
//! multi-receiver min-max LP, then one joint frame decoded at *two*
//! receivers. Reported per cell: how many co-senders joined, the decode
//! rate across both receivers, and the typed join-failure breakdown that
//! the staged API surfaces (`run_joint_transmission`'s silent `continue`s
//! made these counts unmeasurable).
//!
//! Output: TSV
//! `n_cosenders  snr_db  placements  joined_mean  decode_rate  no_detect  missing_delay  other_failure`.

use crate::random_payload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_channel::{FloorPlan, Position};
use ssync_core::{CosenderPlan, DelayDatabase, JoinFailure, JointConfig, JointSession};
use ssync_dsp::stats::mean;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network, NodeId};

/// See the module docs.
pub struct SessionMatrix;

/// Receivers per session (both the placement builder and the decode-rate
/// denominator key off this).
const N_RX: usize = 2;

/// Per-placement result: joined count, decodes (of [`N_RX`] receivers),
/// and the failure tally `(no_detect, missing_delay, other)`.
type Cell = (usize, usize, (usize, usize, usize));

fn one_placement(params: &ssync_phy::Params, n_co: usize, snr_db: f64, seed: u64) -> Option<Cell> {
    let models = ChannelModels::testbed(params);
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = FloorPlan::testbed();
    let n_nodes = 1 + n_co + N_RX;
    let positions: Vec<Position> = (0..n_nodes)
        .map(|_| plan.random_position(&mut rng))
        .collect();
    let mut net = Network::build(&mut rng, params, &positions, &models);
    crate::pin_all_snrs(&mut net, snr_db);

    let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    if !db.measure_all(&mut net, &mut rng, &nodes, 2) {
        return None;
    }
    let cos: Vec<NodeId> = (1..=n_co).map(NodeId).collect();
    let receivers: Vec<NodeId> = (1 + n_co..n_nodes).map(NodeId).collect();
    let sol = db.wait_solution(NodeId(0), &cos, &receivers)?;

    let payload = random_payload(&mut rng, 120);
    let out = JointSession::new(NodeId(0))
        .cosenders(
            cos.iter()
                .zip(&sol.waits)
                .map(|(&node, &wait_s)| CosenderPlan { node, wait_s }),
        )
        .receivers(receivers.iter().copied())
        .payload(payload.clone())
        .config(JointConfig {
            rate: RateId::R6,
            cp_extension: 32,
            ..Default::default()
        })
        .run(&mut net, &mut rng, &db);

    let decodes = out
        .reports
        .iter()
        .filter(|r| r.payload.as_deref() == Some(&payload[..]))
        .count();
    let mut fails = (0usize, 0usize, 0usize);
    for (_, failure) in out.join_failures() {
        match failure {
            JoinFailure::NoDetect => fails.0 += 1,
            JoinFailure::MissingDelay { .. } => fails.1 += 1,
            _ => fails.2 += 1,
        }
    }
    Some((out.joined_count(), decodes, fails))
}

impl Scenario for SessionMatrix {
    fn name(&self) -> &'static str {
        "session_matrix"
    }

    fn title(&self) -> &'static str {
        "Staged JointSession scan: co-sender count x SNR, two receivers"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.4/§6"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::wiglan();
        let placements = ctx.trials(8);
        let co_counts = [1usize, 2, 3];
        let snrs = [9.0f64, 14.0, 20.0];

        out.comment("session_matrix: staged N-co-sender x 2-receiver joint sessions");
        out.comment("numerology: wiglan; all links pinned; LP waits over both receivers");
        out.columns(&[
            "n_cosenders",
            "snr_db",
            "placements",
            "joined_mean",
            "decode_rate",
            "no_detect",
            "missing_delay",
            "other_failure",
        ]);

        let cells = co_counts.len() * snrs.len();
        let results = ctx.par_map(cells * placements, |i| {
            let (cell, p) = (i / placements, i % placements);
            let (ci, si) = (cell / snrs.len(), cell % snrs.len());
            let seed = ssync_exp::trial_seed(310_000, cell as u64, p as u64);
            one_placement(&params, co_counts[ci], snrs[si], seed)
        });

        for (cell, chunk) in results.chunks(placements).enumerate() {
            let (ci, si) = (cell / snrs.len(), cell % snrs.len());
            let ok: Vec<&Cell> = chunk.iter().flatten().collect();
            if ok.is_empty() {
                out.row(vec![
                    Value::Int(co_counts[ci] as i64),
                    Value::F(snrs[si], 1),
                    Value::Int(0),
                    Value::s("NA"),
                    Value::s("NA"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                ]);
                continue;
            }
            let joined = mean(&ok.iter().map(|c| c.0 as f64).collect::<Vec<_>>());
            let decode = ok.iter().map(|c| c.1).sum::<usize>() as f64 / ((N_RX * ok.len()) as f64);
            let no_detect: usize = ok.iter().map(|c| c.2 .0).sum();
            let missing: usize = ok.iter().map(|c| c.2 .1).sum();
            let other: usize = ok.iter().map(|c| c.2 .2).sum();
            out.row(vec![
                Value::Int(co_counts[ci] as i64),
                Value::F(snrs[si], 1),
                Value::Int(ok.len() as i64),
                Value::F(joined, 2),
                Value::F(decode, 2),
                Value::Int(no_detect as i64),
                Value::Int(missing as i64),
                Value::Int(other as i64),
            ]);
        }
    }
}
