//! Figure 15: average SNR of a single sender vs SourceSync joint
//! transmission, by SNR regime (low <6 dB, medium 6–12 dB, high >12 dB).
//!
//! Random testbed placements of two senders and a receiver; for each
//! placement the receiver's mean per-subcarrier SNR is measured (a) for
//! each sender transmitting alone (from its channel estimate) and (b) for
//! the SourceSync joint transmission (effective role-channel gain).
//! Paper result: joint transmission gains 2–3 dB in every regime.
//!
//! Output: TSV `regime  single_mean_db  joint_mean_db  gain_db  n`.

use crate::{pin_all_snrs, pin_link, random_payload, run_once, COSENDER, LEAD, RECEIVER};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_channel::{FloorPlan, Position};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_dsp::stats::{db_from_linear, linear_from_db, mean};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network};

/// See the module docs.
pub struct Fig15PowerGains;

impl Scenario for Fig15PowerGains {
    fn name(&self) -> &'static str {
        "fig15_power_gains"
    }

    fn title(&self) -> &'static str {
        "Single-sender vs joint SNR across low/medium/high regimes"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 15"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::dot11a();
        let models = ChannelModels::testbed(&params);
        let cfg = JointConfig {
            rate: RateId::R6,
            cp_extension: 8,
            ..Default::default()
        };
        let placements = ctx.trials(60);

        // (single-sender mean SNR, joint mean SNR) pairs per placement.
        let samples: Vec<(f64, f64)> = ctx
            .par_map(placements, |p| {
                let seed = 7000 + p as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let plan = FloorPlan::testbed();
                let rx_pos = plan.random_position(&mut rng);
                let s1 = plan.random_position_near(&mut rng, rx_pos, 8.0, 28.0);
                let s2 = plan.random_position_near(&mut rng, s1, 2.0, 10.0);
                let positions: Vec<Position> = vec![s1, s2, rx_pos];
                let mut net = Network::build(&mut rng, &params, &positions, &models);
                // Pin the two sender→receiver links to span the paper's low /
                // medium / high regimes (the paper groups placements by their
                // *measured* single-sender SNR; the testbed's walls produced
                // regimes our open floor plan cannot). Senders hear each other well.
                let snr1: f64 = rng.gen_range(0.5..18.0);
                let snr2 = (snr1 + rng.gen_range(-3.0..3.0)).max(0.5);
                // Delay probing is a long-running background process (the paper's
                // periodic measurements) whose estimates depend on geometry, not on
                // the instantaneous SNR — run it before pinning the links to the
                // experiment's regime.
                pin_all_snrs(&mut net, 25.0);
                let payload = random_payload(&mut rng, 80);
                let mut db = DelayDatabase::new();
                if !db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 3) {
                    return None;
                }
                pin_link(&mut net, LEAD, RECEIVER, snr1);
                pin_link(&mut net, RECEIVER, LEAD, snr1);
                pin_link(&mut net, COSENDER, RECEIVER, snr2);
                pin_link(&mut net, RECEIVER, COSENDER, snr2);
                pin_link(&mut net, LEAD, COSENDER, 25.0);
                pin_link(&mut net, COSENDER, LEAD, 25.0);
                let sol = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER])?;
                let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, sol.waits[0]);
                let report = &out.reports[0];
                if !report.header_ok || report.co_channels[0].is_none() {
                    return None;
                }
                let lead_est = report.lead_channel.as_ref().unwrap();
                let co_est = report.co_channels[0].as_ref().unwrap();
                let n0 = lead_est.noise_power.max(1e-15);
                // Bias-correct the SNR estimate: a 2-repetition LS channel estimate
                // carries n0/2 of estimation noise per carrier, which matters in
                // the low regime.
                let unbias = |p: f64| db_from_linear((p / n0 - 0.5).max(0.01));
                let lead_snr = unbias(lead_est.mean_power());
                let co_snr = unbias(co_est.mean_power());
                // "Senders transmitting separately": the average of the two.
                let single = (lead_snr + co_snr) / 2.0;
                let joint_lin = mean(
                    &report
                        .effective_snr_db
                        .iter()
                        .map(|d| linear_from_db(*d))
                        .collect::<Vec<_>>(),
                );
                Some((single, db_from_linear(joint_lin)))
            })
            .into_iter()
            .flatten()
            .collect();

        out.comment("Figure 15: power gains — single sender vs SourceSync, by SNR regime");
        out.columns(&["regime", "single_db", "joint_db", "gain_db", "n"]);
        for (name, lo, hi) in [
            ("low(<6dB)", f64::NEG_INFINITY, 6.0),
            ("medium(6-12dB)", 6.0, 12.0),
            ("high(>12dB)", 12.0, f64::INFINITY),
        ] {
            let bin: Vec<&(f64, f64)> = samples
                .iter()
                .filter(|(s, _)| *s >= lo && *s < hi)
                .collect();
            if bin.is_empty() {
                out.row(vec![
                    Value::s(name),
                    Value::s("NA"),
                    Value::s("NA"),
                    Value::s("NA"),
                    Value::Int(0),
                ]);
                continue;
            }
            let s = mean(&bin.iter().map(|(a, _)| *a).collect::<Vec<_>>());
            let j = mean(&bin.iter().map(|(_, b)| *b).collect::<Vec<_>>());
            out.row(vec![
                Value::s(name),
                Value::F(s, 2),
                Value::F(j, 2),
                Value::F(j - s, 2),
                Value::Int(bin.len() as i64),
            ]);
        }
    }
}
