//! City-scale testbed: a ≥500-node avenue mesh whose interference-closed
//! regions run the full protocol stack in parallel — the ROADMAP's
//! "city-scale" north star made a pinned, golden-checked scenario.
//!
//! One long avenue of 72 city blocks, 7 radios per block, streets wider
//! than the interference range: the ranged network builder
//! ([`ssync_sim::Network::build_ranged`]) draws only in-range links, the
//! component partition proves each block is interference-closed, and
//! [`ssync_testbed::run_city_observed`] runs one ExOR+SourceSync batch
//! transfer per region on `ssync_exp::exec::par_map` — byte-identical at
//! any worker count. Delivery beyond the range is the hybrid-fidelity
//! boundary: an analytic directional backhaul chain hops region centroids
//! down the avenue to the city sink (region 0), so sink delivery decays
//! with hop count while local delivery stays waveform-accurate.
//!
//! Output: one row per region (size, backhaul depth, local and sink
//! deliveries, frame accounting) plus city totals.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_obs::{Obs, Observable};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::ChannelModels;
use ssync_testbed::{run_city_observed, CityConfig, CityNetwork, RoutingMode, TestbedConfig};

/// The avenue plan: 72 blocks in a row, 7 radios each — 504 nodes. Blocks
/// are 150 m (in-block diameter ≈ 212 m, inside the 215 m range, so every
/// block is one connected region; the *typical* intra-block distance of
/// ~80 m sits at the default budget's marginal R12 operating point — the
/// Fig. 10 regime where ExOR forwarding and SourceSync joins pay) and
/// streets 220 m (beyond the range, so no block couples with its
/// neighbour at the waveform level).
fn avenue() -> ssync_channel::CityPlan {
    ssync_channel::CityPlan {
        blocks_x: 72,
        blocks_y: 1,
        block_m: 150.0,
        street_m: 220.0,
        nodes_per_block: 7,
    }
}

/// Interference range the city is built at, metres.
const RANGE_M: f64 = 215.0;

/// See the module docs.
pub struct TestbedCity;

impl TestbedCity {
    /// One body for both the plain and observed paths. Each region's
    /// recorder/registry comes back from [`run_city_observed`] in region
    /// order and is folded into `obs` as a `city{c}/region{k}` track.
    fn run_with_obs(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        let params = OfdmParams::dot11a();
        let plan = avenue();
        let transfer = TestbedConfig {
            batch_size: 4,
            payload_len: 64,
            ..TestbedConfig::new(RateId::R12, RoutingMode::ExorSourceSync)
        };
        let cities = ctx.trials(1);
        out.comment(format!(
            "City-scale testbed: {} nodes in {} interference-closed regions \
             (avenue of {}x{} blocks, {} radios each, {RANGE_M:.0} m range)",
            plan.node_count(),
            plan.blocks_x * plan.blocks_y,
            plan.blocks_x,
            plan.blocks_y,
            plan.nodes_per_block,
        ));
        out.comment(
            "(waveform PHY inside each region, regions in parallel; analytic \
             directional backhaul between region centroids to the city sink)",
        );

        for c in 0..cities {
            let seed = 880_000 + 17 * c as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let city = CityNetwork::build(
                &mut rng,
                &params,
                &plan,
                &ChannelModels::testbed(&params),
                RANGE_M,
            );
            let cfg = CityConfig {
                threads: ctx.threads(),
                ..CityConfig::new(transfer.clone())
            };
            let (outcome, artifacts) =
                run_city_observed(&city, seed ^ 0xC17, &cfg, obs.is_enabled());
            for (k, (rec, reg)) in artifacts.into_iter().enumerate() {
                obs.add_track(format!("city{c}/region{k}"), rec);
                obs.merge_metrics(&reg);
            }

            out.blank();
            out.comment(format!(
                "city {c}: {} nodes, {} regions",
                outcome.nodes,
                outcome.regions.len()
            ));
            out.columns(&[
                "region",
                "nodes",
                "backhaul_hops",
                "delivered",
                "sink_delivered",
                "data_frames",
                "joint_frames",
                "joins",
            ]);
            for r in &outcome.regions {
                let (delivered, data, joint, joins) = r
                    .outcome
                    .as_ref()
                    .map(|o| (o.delivered, o.data_frames, o.joint_frames, o.joins.joined))
                    .unwrap_or((0, 0, 0, 0));
                out.row(vec![
                    Value::Int(r.region as i64),
                    Value::Int(r.nodes as i64),
                    Value::Int(r.backhaul_hops as i64),
                    Value::Int(delivered as i64),
                    Value::Int(r.sink_delivered as i64),
                    Value::Int(data as i64),
                    Value::Int(joint as i64),
                    Value::Int(joins as i64),
                ]);
            }
            let attempts: u64 = outcome.regions.iter().map(|r| r.backhaul_attempts).sum();
            out.comment(format!(
                "city {c} totals: {} delivered locally, {} reached the sink \
                 ({attempts} backhaul attempts), {} data frames, {} joint frames \
                 ({} joins), {} collisions",
                outcome.delivered_local(),
                outcome.delivered_sink(),
                outcome.data_frames(),
                outcome.joint_frames(),
                outcome.joins_joined(),
                outcome.collisions(),
            ));
        }
    }
}

impl Scenario for TestbedCity {
    fn name(&self) -> &'static str {
        "testbed_city"
    }

    fn title(&self) -> &'static str {
        "City-scale testbed: 504-node avenue, interference-closed regions in parallel"
    }

    fn paper_ref(&self) -> &'static str {
        "§8 at city scale (ROADMAP north star)"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        self.run_with_obs(ctx, out, &mut Obs::disabled());
    }
}

impl Observable for TestbedCity {
    fn run_observed(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        self.run_with_obs(ctx, out, obs);
    }
}
