//! City-scale testbed: a ≥500-node avenue mesh whose interference-closed
//! regions run the full protocol stack in parallel — the ROADMAP's
//! "city-scale" north star made a pinned, golden-checked scenario.
//!
//! One long avenue of 72 city blocks, 7 radios per block, streets wider
//! than the interference range: the ranged network builder
//! ([`ssync_sim::Network::build_ranged`]) draws only in-range links, the
//! component partition proves each block is interference-closed, and
//! [`ssync_testbed::run_city_observed`] runs one ExOR+SourceSync batch
//! transfer per region on `ssync_exp::exec::par_map` — byte-identical at
//! any worker count. Delivery beyond the range is the hybrid-fidelity
//! boundary: an analytic directional backhaul chain hops region centroids
//! down the avenue to the city sink (region 0), so sink delivery decays
//! with hop count while local delivery stays waveform-accurate.
//!
//! Output: one row per region (size, backhaul depth, local and sink
//! deliveries, frame accounting) plus city totals.
//!
//! The whole scenario is expressed over [`CitySweep`], a parameterized
//! sweep that doubles as the experiment service's unit decomposition:
//! each *city* is one checkpointable unit (`prologue ++ city 0 ++ … ++
//! city n-1` is exactly the serial byte stream), so a city-scale service
//! job killed at city *k* resumes from the checkpoint and renders the
//! same bytes an uninterrupted run would. Tests drive the identical code
//! on a debug-fast small plan.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_exp::service::{UnitOutput, UnitScenario};
use ssync_exp::{Ctx, Output, Scenario, Value};
use ssync_obs::{Obs, Observable};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::ChannelModels;
use ssync_testbed::{run_city_observed, CityConfig, CityNetwork, RoutingMode, TestbedConfig};

/// The avenue plan: 72 blocks in a row, 7 radios each — 504 nodes. Blocks
/// are 150 m (in-block diameter ≈ 212 m, inside the 215 m range, so every
/// block is one connected region; the *typical* intra-block distance of
/// ~80 m sits at the default budget's marginal R12 operating point — the
/// Fig. 10 regime where ExOR forwarding and SourceSync joins pay) and
/// streets 220 m (beyond the range, so no block couples with its
/// neighbour at the waveform level).
fn avenue() -> ssync_channel::CityPlan {
    ssync_channel::CityPlan {
        blocks_x: 72,
        blocks_y: 1,
        block_m: 150.0,
        street_m: 220.0,
        nodes_per_block: 7,
    }
}

/// Interference range the city is built at, metres.
const RANGE_M: f64 = 215.0;

/// A sweep of independently seeded cities over one plan: the shared body
/// of the [`TestbedCity`] scenario (serial and observed paths) and its
/// service unit decomposition. Constructible with any plan so tests can
/// exercise the exact production decomposition on a small, debug-fast
/// city.
pub struct CitySweep {
    plan: ssync_channel::CityPlan,
    range_m: f64,
    transfer: TestbedConfig,
}

impl CitySweep {
    /// A sweep over an arbitrary plan (tests); the scenario itself uses
    /// [`CitySweep::avenue`].
    pub fn new(plan: ssync_channel::CityPlan, range_m: f64, transfer: TestbedConfig) -> CitySweep {
        CitySweep {
            plan,
            range_m,
            transfer,
        }
    }

    /// The pinned 504-node avenue the `testbed_city` goldens are built on.
    pub fn avenue() -> CitySweep {
        CitySweep::new(
            avenue(),
            RANGE_M,
            TestbedConfig {
                batch_size: 4,
                payload_len: 64,
                ..TestbedConfig::new(RateId::R12, RoutingMode::ExorSourceSync)
            },
        )
    }

    /// The two header comments every render starts with.
    fn emit_prologue(&self, out: &mut Output) {
        out.comment(format!(
            "City-scale testbed: {} nodes in {} interference-closed regions \
             (avenue of {}x{} blocks, {} radios each, {:.0} m range)",
            self.plan.node_count(),
            self.plan.blocks_x * self.plan.blocks_y,
            self.plan.blocks_x,
            self.plan.blocks_y,
            self.plan.nodes_per_block,
            self.range_m,
        ));
        out.comment(
            "(waveform PHY inside each region, regions in parallel; analytic \
             directional backhaul between region centroids to the city sink)",
        );
    }

    /// Builds and runs city `c` (self-contained: blank separator, region
    /// table, totals comment) and returns its per-city statistics —
    /// `[delivered_local, delivered_sink, data, joint, joins, collisions]`
    /// — for the service's streamed fold. Pure in `(c, threads)` up to
    /// byte identity: `threads` only shapes wall-clock time.
    fn emit_city(&self, c: usize, threads: usize, obs: &mut Obs, out: &mut Output) -> Vec<f64> {
        let params = OfdmParams::dot11a();
        let seed = 880_000 + 17 * c as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let city = CityNetwork::build(
            &mut rng,
            &params,
            &self.plan,
            &ChannelModels::testbed(&params),
            self.range_m,
        );
        let cfg = CityConfig {
            threads,
            ..CityConfig::new(self.transfer.clone())
        };
        let (outcome, artifacts) = run_city_observed(&city, seed ^ 0xC17, &cfg, obs.is_enabled());
        for (k, (rec, reg)) in artifacts.into_iter().enumerate() {
            obs.add_track(format!("city{c}/region{k}"), rec);
            obs.merge_metrics(&reg);
        }

        out.blank();
        out.comment(format!(
            "city {c}: {} nodes, {} regions",
            outcome.nodes,
            outcome.regions.len()
        ));
        out.columns(&[
            "region",
            "nodes",
            "backhaul_hops",
            "delivered",
            "sink_delivered",
            "data_frames",
            "joint_frames",
            "joins",
        ]);
        for r in &outcome.regions {
            let (delivered, data, joint, joins) = r
                .outcome
                .as_ref()
                .map(|o| (o.delivered, o.data_frames, o.joint_frames, o.joins.joined))
                .unwrap_or((0, 0, 0, 0));
            out.row(vec![
                Value::Int(r.region as i64),
                Value::Int(r.nodes as i64),
                Value::Int(r.backhaul_hops as i64),
                Value::Int(delivered as i64),
                Value::Int(r.sink_delivered as i64),
                Value::Int(data as i64),
                Value::Int(joint as i64),
                Value::Int(joins as i64),
            ]);
        }
        let attempts: u64 = outcome.regions.iter().map(|r| r.backhaul_attempts).sum();
        out.comment(format!(
            "city {c} totals: {} delivered locally, {} reached the sink \
             ({attempts} backhaul attempts), {} data frames, {} joint frames \
             ({} joins), {} collisions",
            outcome.delivered_local(),
            outcome.delivered_sink(),
            outcome.data_frames(),
            outcome.joint_frames(),
            outcome.joins_joined(),
            outcome.collisions(),
        ));
        vec![
            outcome.delivered_local() as f64,
            outcome.delivered_sink() as f64,
            outcome.data_frames() as f64,
            outcome.joint_frames() as f64,
            outcome.joins_joined() as f64,
            outcome.collisions() as f64,
        ]
    }

    /// The serial body (also the observed path): prologue, then every
    /// city in index order.
    fn run_serial(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        self.emit_prologue(out);
        for c in 0..ctx.trials(1) {
            self.emit_city(c, ctx.threads(), obs, out);
        }
    }

    /// The serial reference bytes (exactly what [`TestbedCity::run`]
    /// emits for the avenue sweep) — the fixed point the unit
    /// decomposition and the service path are conformance-tested against.
    pub fn render_serial(&self, name: &str, cfg: &ssync_exp::RunConfig) -> String {
        let ctx = Ctx::new(cfg.clone());
        let mut out = Output::new();
        self.run_serial(&ctx, &mut out, &mut Obs::disabled());
        match cfg.format {
            ssync_exp::Format::Tsv => ssync_exp::sink::render_tsv(&out),
            ssync_exp::Format::Json => ssync_exp::sink::render_json(name, &out),
        }
    }
}

/// Service decomposition: one city per unit. Observability stays on the
/// serial [`Observable`] path — unit fragments run with obs disabled,
/// which cannot change the bytes (the recorder is side-band by contract).
impl UnitScenario for CitySweep {
    fn unit_count(&self, ctx: &Ctx) -> usize {
        ctx.trials(1)
    }

    fn prologue(&self, _ctx: &Ctx, out: &mut Output) {
        self.emit_prologue(out);
    }

    fn run_unit(&self, ctx: &Ctx, unit: usize) -> UnitOutput {
        let mut output = Output::new();
        let stats = self.emit_city(unit, ctx.threads(), &mut Obs::disabled(), &mut output);
        UnitOutput { output, stats }
    }
}

/// See the module docs.
pub struct TestbedCity;

impl Scenario for TestbedCity {
    fn name(&self) -> &'static str {
        "testbed_city"
    }

    fn title(&self) -> &'static str {
        "City-scale testbed: 504-node avenue, interference-closed regions in parallel"
    }

    fn paper_ref(&self) -> &'static str {
        "§8 at city scale (ROADMAP north star)"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        CitySweep::avenue().run_serial(ctx, out, &mut Obs::disabled());
    }
}

impl Observable for TestbedCity {
    fn run_observed(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
        CitySweep::avenue().run_serial(ctx, out, obs);
    }
}

/// The avenue decomposition behind the registry's `testbed_city` service
/// entry (a `OnceLock` because [`CitySweep`] builds its `TestbedConfig`
/// at runtime).
pub(crate) fn avenue_units() -> &'static CitySweep {
    static UNITS: std::sync::OnceLock<CitySweep> = std::sync::OnceLock::new();
    UNITS.get_or_init(CitySweep::avenue)
}
