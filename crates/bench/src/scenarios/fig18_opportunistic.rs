//! Figure 18: opportunistic routing throughput CDFs at 6 and 12 Mbps —
//! single path vs ExOR vs ExOR+SourceSync.
//!
//! Twenty random five-node topologies per rate (source, three relays,
//! destination — the paper's §8.4 method and its Fig. 10 setting: lossy
//! links of ≈50 % delivery at the fixed network rate, relays that can hear
//! each other, and no usable direct source→destination link). Because the
//! paper's loss rates come from a wall-heavy testbed at fixed bit rates,
//! the per-link SNRs are drawn directly in the band that produces those
//! loss rates (documented in DESIGN.md). Paper result: ExOR gains
//! 1.26–1.4× over single path; ExOR+SourceSync adds 1.35–1.45× over ExOR
//! (1.7–2× over single path).
//!
//! Output: per-rate CDF blocks plus median-ratio summary lines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_dsp::stats::median;
use ssync_exp::scenario::emit_cdf;
use ssync_exp::{Ctx, Output, Scenario};
use ssync_phy::ber::PerTable;
use ssync_phy::{OfdmParams, RateId};
use ssync_routing::{run_batch, run_transfer, BatchRoute, ExorConfig, MeshTopology, TransferSpec};

/// Draws a 5-node topology: 0 = source, 1–3 = relays, 4 = destination.
fn draw_topology(rng: &mut StdRng, rate: RateId) -> MeshTopology {
    // The SNR at which this rate delivers ≈50 % of packets (analytic
    // table midpoints), ±2.5 dB of per-link spread.
    let mid = match rate {
        RateId::R6 => 4.0,
        RateId::R12 => 7.0,
        _ => 9.0,
    };
    let inf = f64::NEG_INFINITY;
    let mut snr = vec![vec![inf; 5]; 5];
    // src → relay: moderately lossy (the first-hop receiver diversity
    // ExOR exploits); relay → dst: the poor final hop where sender
    // diversity pays (the paper's Fig. 1(b) situation). Band offsets are
    // per-rate because the coded PER cliffs have different widths.
    let (src_band, dst_band) = match rate {
        RateId::R6 => ((1.0, 6.0), (0.0, 3.0)),
        _ => ((1.5, 6.0), (-1.5, 2.5)),
    };
    #[allow(clippy::needless_range_loop)] // symmetric matrix entries assigned by index
    for r in 1..=3usize {
        let a = mid + rng.gen_range(src_band.0..src_band.1);
        snr[0][r] = a;
        snr[r][0] = a;
        let b = mid + rng.gen_range(dst_band.0..dst_band.1);
        snr[r][4] = b;
        snr[4][r] = b;
    }
    // Relays hear each other well (they are clustered mid-path).
    #[allow(clippy::needless_range_loop)] // symmetric matrix entries assigned by index
    for i in 1..=3usize {
        for j in 1..=3usize {
            if i != j {
                snr[i][j] = rng.gen_range(12.0..20.0);
            }
        }
    }
    // Direct src→dst: too weak to use.
    let direct = rng.gen_range(-8.0..-2.0);
    snr[0][4] = direct;
    snr[4][0] = direct;
    MeshTopology::from_snrs(snr)
}

/// See the module docs.
pub struct Fig18Opportunistic;

impl Scenario for Fig18Opportunistic {
    fn name(&self) -> &'static str {
        "fig18_opportunistic"
    }

    fn title(&self) -> &'static str {
        "Opportunistic-routing throughput: single path vs ExOR vs ExOR+SourceSync"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 18 / §7.2"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::dot11a();
        let per = PerTable::analytic();
        let topologies = ctx.trials(20);

        out.comment("Figure 18: opportunistic routing throughput (Mbps)");
        for rate in [RateId::R6, RateId::R12] {
            let batches = 4usize;
            let results = ctx.par_map(topologies, |t| {
                let seed = 90_000 + 1000 * rate.to_index() as u64 + t as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let topo = draw_topology(&mut rng, rate);

                let cfg = ExorConfig::new(rate);
                let cfg_ss = ExorConfig::new(rate).with_sender_diversity();
                let n_pkts = cfg.batch_size * batches;

                let mut rng_s = StdRng::seed_from_u64(seed ^ 1);
                let transfer = TransferSpec {
                    src: 0,
                    dst: 4,
                    rate,
                    payload_len: cfg.payload_len,
                    n_packets: n_pkts,
                    retry_limit: 7,
                };
                let single = run_transfer(&mut rng_s, &params, &topo, &per, &transfer)
                    .map(|o| o.throughput_bps / 1e6)
                    .unwrap_or(0.0);
                let route = BatchRoute {
                    src: 0,
                    dst: 4,
                    candidates: &[1, 2, 3],
                };
                let mut acc = (0.0, 0.0);
                for b in 0..batches {
                    let mut rng_e = StdRng::seed_from_u64(seed ^ (2 + b as u64));
                    if let Some(o) = run_batch(&mut rng_e, &params, &topo, &per, &route, &cfg) {
                        acc.0 += o.throughput_bps / 1e6 / batches as f64;
                    }
                    let mut rng_j = StdRng::seed_from_u64(seed ^ (100 + b as u64));
                    if let Some(o) = run_batch(&mut rng_j, &params, &topo, &per, &route, &cfg_ss) {
                        acc.1 += o.throughput_bps / 1e6 / batches as f64;
                    }
                }
                (single, acc.0, acc.1)
            });
            let mut tp_single = Vec::with_capacity(topologies);
            let mut tp_exor = Vec::with_capacity(topologies);
            let mut tp_ssync = Vec::with_capacity(topologies);
            for (s, e, j) in results {
                tp_single.push(s);
                tp_exor.push(e);
                tp_ssync.push(j);
            }
            out.blank();
            out.comment(format!("===== bitrate {} Mbps =====", rate.nominal_mbps()));
            emit_cdf(out, "single path", &tp_single);
            out.blank();
            emit_cdf(out, "ExOR", &tp_exor);
            out.blank();
            emit_cdf(out, "ExOR + SourceSync", &tp_ssync);
            let (ms, me, mj) = (median(&tp_single), median(&tp_exor), median(&tp_ssync));
            out.comment(format!(
                "medians: single {ms:.2}, ExOR {me:.2}, ExOR+SourceSync {mj:.2} Mbps"
            ));
            out.comment(format!(
                "gains: ExOR/single {:.2}x (paper 1.26-1.4x), SourceSync/ExOR {:.2}x (paper 1.35-1.45x), SourceSync/single {:.2}x (paper 1.7-2x)",
                me / ms.max(1e-9),
                mj / me.max(1e-9),
                mj / ms.max(1e-9)
            ));
        }
    }
}
