//! Figure 17: last-hop throughput CDF — single best AP ("selective
//! diversity") vs SourceSync joint APs.
//!
//! The paper's clients have *poor connectivity to multiple nearby APs*
//! (§1.2, §7.1): per-AP SNRs are drawn across the marginal band where rate
//! adaptation actually has to work (≈3–16 dB — the regime the testbed's
//! walls produced; our open floor plan cannot, so the SNRs are drawn
//! directly and documented in DESIGN.md). SampleRate adapts the rate on
//! the lead AP; the PER model is pinned to the sample-level modem. Paper
//! result: median gain 1.57×, with gains at all client percentiles.
//!
//! Output: two CDF blocks plus the median-gain summary line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_dsp::stats::median;
use ssync_exp::scenario::emit_cdf;
use ssync_exp::{Ctx, Output, Scenario};
use ssync_lasthop::{run_session, ClientScenario, Mode, SessionSpec};
use ssync_phy::ber::PerTable;
use ssync_phy::OfdmParams;

/// See the module docs.
pub struct Fig17LasthopCdf;

impl Scenario for Fig17LasthopCdf {
    fn name(&self) -> &'static str {
        "fig17_lasthop_cdf"
    }

    fn title(&self) -> &'static str {
        "Last-hop throughput CDF: best single AP vs SourceSync joint APs"
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 17 / §7.1"
    }

    fn run(&self, ctx: &Ctx, out: &mut Output) {
        let params = OfdmParams::dot11a();
        let per = PerTable::analytic();
        let placements = ctx.trials(60);
        let n_packets = 400;
        let payload = 1460;

        let sessions = ctx.par_map(placements, |p| {
            let seed = 50_000 + p as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            // Marginal clients: both APs in the 3–16 dB band, correlated (the
            // client is simply far from the AP cluster), ±4 dB split.
            let base: f64 = rng.gen_range(3.0..16.0);
            let s1 = base + rng.gen_range(-2.0..2.0);
            let s2 = base + rng.gen_range(-4.0..2.0);
            let scenario = ClientScenario {
                downlink_snr_db: vec![s1.max(s2), s1.min(s2)], // lead = best AP
                uplink_snr_db: vec![s1, s2],
            };
            let spec = |mode| SessionSpec {
                mode,
                payload_len: payload,
                n_packets,
                retry_limit: 7,
            };
            let mut rng_run = StdRng::seed_from_u64(seed ^ 0xF00D);
            let o_single = run_session(
                &mut rng_run,
                &params,
                &per,
                &scenario,
                &spec(Mode::BestSingleAp),
            );
            let mut rng_run = StdRng::seed_from_u64(seed ^ 0xF00D);
            let o_joint = run_session(
                &mut rng_run,
                &params,
                &per,
                &scenario,
                &spec(Mode::SourceSync),
            );
            (o_single.throughput_bps / 1e6, o_joint.throughput_bps / 1e6)
        });
        let (single, joint): (Vec<f64>, Vec<f64>) = sessions.into_iter().unzip();

        out.comment("Figure 17: last-hop throughput CDFs (Mbps)");
        emit_cdf(out, "single best AP (selective diversity)", &single);
        out.blank();
        emit_cdf(out, "SourceSync (both APs jointly)", &joint);
        let med_s = median(&single);
        let med_j = median(&joint);
        out.comment(format!(
            "median single = {med_s:.2} Mbps, median SourceSync = {med_j:.2} Mbps"
        ));
        out.comment(format!(
            "median gain = {:.2}x (paper: 1.57x)",
            med_j / med_s.max(1e-9)
        ));
    }
}
