//! Every evaluation artefact of the paper as a declarative `ssync_exp`
//! scenario, plus the registry the `ssync-lab` runner and the thin figure
//! binaries resolve scenarios from.
//!
//! Porting contract: each scenario's TSV rendering is byte-identical to
//! the stdout of the pre-harness binary of the same name, at every thread
//! count (enforced by golden and determinism tests). Trials parallelise
//! across workers; anything that historically consumed one sequential RNG
//! stream across trials (e.g. [`Fig08WaitLp`]'s placement draws) keeps a
//! serial generation phase and parallelises only the per-trial compute.

mod ablation_combiner;
mod ablation_tracking;
mod fig05_phase_slope;
mod fig08_wait_lp;
mod fig12_sync_error;
mod fig13_cp_sweep;
mod fig14_delay_spread;
mod fig15_power_gains;
mod fig16_subcarrier_snr;
mod fig17_lasthop_cdf;
mod fig18_opportunistic;
mod session_matrix;
mod sweep_wait_residual;
mod table_overhead;
mod testbed_city;
mod testbed_fault;
mod testbed_multihop;

pub use ablation_combiner::AblationCombiner;
pub use ablation_tracking::AblationTracking;
pub use fig05_phase_slope::Fig05PhaseSlope;
pub use fig08_wait_lp::Fig08WaitLp;
pub use fig12_sync_error::Fig12SyncError;
pub use fig13_cp_sweep::Fig13CpSweep;
pub use fig14_delay_spread::Fig14DelaySpread;
pub use fig15_power_gains::Fig15PowerGains;
pub use fig16_subcarrier_snr::Fig16SubcarrierSnr;
pub use fig17_lasthop_cdf::Fig17LasthopCdf;
pub use fig18_opportunistic::Fig18Opportunistic;
pub use session_matrix::SessionMatrix;
pub use sweep_wait_residual::SweepWaitResidual;
pub use table_overhead::TableOverhead;
pub use testbed_city::{CitySweep, TestbedCity};
pub use testbed_fault::TestbedFault;
pub use testbed_multihop::TestbedMultihop;

use rand::rngs::StdRng;
use rand::Rng;
use ssync_channel::Position;
use ssync_exp::service::{UnitRegistry, UnitScenario, WholeJob};
use ssync_exp::Scenario;
use ssync_obs::Observable;

/// The testbed scenarios' five-node diamond placement — source, three
/// clustered relays, destination — with ±2 m of per-trial jitter so the
/// §4.3 propagation-delay compensation sees realistic geometry. One
/// definition, shared by `testbed_multihop` and `testbed_fault`, so "the
/// diamond" cannot silently diverge between them.
pub(crate) fn jittered_diamond(rng: &mut StdRng) -> Vec<Position> {
    let mut jitter = |base: (f64, f64)| {
        Position::new(
            base.0 + rng.gen_range(-2.0..2.0),
            base.1 + rng.gen_range(-2.0..2.0),
        )
    };
    vec![
        Position::new(0.0, 0.0),
        jitter((14.0, -8.0)),
        jitter((14.0, 0.0)),
        jitter((14.0, 8.0)),
        jitter((28.0, 0.0)),
    ]
}

/// Every registered scenario, in paper order.
pub fn all() -> &'static [&'static dyn Scenario] {
    &[
        &Fig05PhaseSlope,
        &Fig08WaitLp,
        &Fig12SyncError,
        &Fig13CpSweep,
        &Fig14DelaySpread,
        &Fig15PowerGains,
        &Fig16SubcarrierSnr,
        &Fig17LasthopCdf,
        &Fig18Opportunistic,
        &AblationCombiner,
        &AblationTracking,
        &TableOverhead,
        &SweepWaitResidual,
        &SessionMatrix,
        &TestbedMultihop,
        &TestbedFault,
        &TestbedCity,
    ]
}

/// Looks a scenario up by its stable name.
pub fn find(name: &str) -> Option<&'static dyn Scenario> {
    all().iter().copied().find(|s| s.name() == name)
}

/// The scenarios that can additionally run with observability attached
/// (`ssync-lab run <name> --trace/--metrics`): the event-driven testbed
/// family, whose engine threads an [`ssync_obs::TraceRecorder`] and
/// [`ssync_obs::MetricRegistry`] through the whole protocol stack.
pub fn observable() -> &'static [&'static dyn Observable] {
    &[&TestbedMultihop, &TestbedFault, &TestbedCity]
}

/// Looks an observable scenario up by its stable name.
pub fn find_observable(name: &str) -> Option<&'static dyn Observable> {
    observable().iter().copied().find(|s| s.name() == name)
}

/// The experiment service's view of the registry: every scenario is
/// servable, preferring a real unit decomposition where one exists
/// (`testbed_city` checkpoints per city) and falling back to
/// [`WholeJob`] (one all-or-nothing unit) otherwise.
pub struct LabRegistry;

impl UnitRegistry for LabRegistry {
    fn resolve(&self, name: &str) -> Option<&dyn UnitScenario> {
        if name == "testbed_city" {
            return Some(testbed_city::avenue_units());
        }
        static WHOLE: std::sync::OnceLock<Vec<WholeJob<'static>>> = std::sync::OnceLock::new();
        let whole = WHOLE.get_or_init(|| all().iter().map(|s| WholeJob(*s)).collect());
        all()
            .iter()
            .position(|s| s.name() == name)
            .map(|i| &whole[i] as &dyn UnitScenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = all().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        assert_eq!(all().len(), 17);
        for name in names {
            assert!(find(name).is_some());
            assert!(!find(name).unwrap().title().is_empty());
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn observable_registry_is_a_subset_of_the_main_registry() {
        for s in observable() {
            assert!(
                find(s.name()).is_some(),
                "observable scenario {:?} missing from all()",
                s.name()
            );
            assert!(find_observable(s.name()).is_some());
        }
        assert!(find_observable("testbed_multihop").is_some());
        assert!(find_observable("testbed_fault").is_some());
        assert!(find_observable("testbed_city").is_some());
        assert!(find_observable("fig08_wait_lp").is_none());
    }

    #[test]
    fn lab_registry_serves_every_scenario_and_decomposes_the_city() {
        use ssync_exp::{Ctx, RunConfig};
        let ctx = Ctx::new(RunConfig {
            trials_scale: 3,
            ..Default::default()
        });
        for s in all() {
            let units = LabRegistry
                .resolve(s.name())
                .unwrap_or_else(|| panic!("{} not servable", s.name()));
            let expect = if s.name() == "testbed_city" { 3 } else { 1 };
            assert_eq!(units.unit_count(&ctx), expect, "{}", s.name());
        }
        assert!(LabRegistry.resolve("no_such_scenario").is_none());
    }
}
