//! Figure 16: per-subcarrier SNR of each sender alone vs SourceSync joint
//! transmission, in high/medium/low SNR regimes.
//!
//! The paper's point: the joint profile is not only higher on average but
//! *flatter* — the senders' independent frequency-selective fades fill
//! each other in, which is what lets convolutionally-coded 802.11 use a
//! higher bit rate.
//!
//! Output: three TSV blocks (`high`, `medium`, `low`), each
//! `freq_mhz  sender1_db  sender2_db  joint_db`, plus flatness statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_bench::{pin_all_snrs, random_payload, COSENDER, LEAD, RECEIVER};
use ssync_channel::{FloorPlan, Position};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_dsp::stats::{db_from_linear, std_dev};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network};

fn main() {
    let params = OfdmParams::dot11a();
    let models = ChannelModels::testbed(&params);
    let cfg = JointConfig {
        rate: RateId::R6,
        cp_extension: 8,
        ..Default::default()
    };

    println!("# Figure 16: per-subcarrier SNR — each sender alone vs SourceSync");
    for (regime, snr_db, seed) in [("high", 16.0, 11u64), ("medium", 9.0, 23), ("low", 4.0, 37)] {
        // Controlled per-sender mean SNR, random multipath (the fades).
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FloorPlan::testbed();
        let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
        let mut net = Network::build(&mut rng, &params, &positions, &models);
        // Probe delays at a comfortable SNR (geometry-only measurement),
        // then pin the regime under test.
        pin_all_snrs(&mut net, 25.0);
        let payload = random_payload(&mut rng, 80);
        let mut db = DelayDatabase::new();
        if !db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 3) {
            println!("# {regime}: probes failed, skipping");
            continue;
        }
        pin_all_snrs(&mut net, snr_db);
        let Some(sol) = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER]) else {
            continue;
        };
        let out = ssync_bench::run_once(&mut net, &mut rng, &payload, &cfg, &db, sol.waits[0]);
        let report = &out.reports[0];
        let (Some(lead_est), Some(co_est)) =
            (report.lead_channel.as_ref(), report.co_channels[0].as_ref())
        else {
            println!("# {regime}: joint frame failed, skipping");
            continue;
        };
        let n0 = lead_est.noise_power.max(1e-15);
        println!("# regime: {regime} (per-sender mean SNR pinned to {snr_db} dB)");
        println!("# freq_mhz\tsender1_db\tsender2_db\tjoint_db");
        let spacing_mhz = params.subcarrier_spacing_hz() / 1e6;
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        let mut joint = Vec::new();
        for (j, &k) in params.data_carriers.iter().enumerate() {
            let h1 = lead_est.gain(k).unwrap();
            let h2 = co_est.gain(k).unwrap();
            let v1 = db_from_linear(h1.norm_sqr() / n0);
            let v2 = db_from_linear(h2.norm_sqr() / n0);
            let vj = report.effective_snr_db[j];
            println!("{:.2}\t{v1:.2}\t{v2:.2}\t{vj:.2}", k as f64 * spacing_mhz);
            s1.push(v1);
            s2.push(v2);
            joint.push(vj);
        }
        println!(
            "# flatness (std dev of per-carrier SNR, dB): sender1 {:.2}, sender2 {:.2}, joint {:.2}",
            std_dev(&s1),
            std_dev(&s2),
            std_dev(&joint)
        );
    }
}
