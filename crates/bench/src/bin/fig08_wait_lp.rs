//! Figure 8: the multi-receiver wait-time conflict and the minimax LP.
//!
//! With one receiver a co-sender's wait aligns the joint transmission
//! perfectly; with several receivers perfect alignment is generally
//! impossible (paper §4.6, Fig. 8). This binary first reproduces the
//! paper's concrete two-receiver example, then sweeps the receiver count
//! over random placements and reports the mean residual misalignment the
//! LP leaves behind versus the naive align-at-receiver-0 policy.
//!
//! Output: TSV `n_receivers  mean_lp_residual_ns  mean_naive_residual_ns`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_linprog::MisalignmentProblem;

fn main() {
    // Paper Fig. 8 worked example: aligning at Rx1 needs the co-sender
    // 100 ns early, aligning at Rx2 needs it 100 ns late; the optimum
    // splits the difference with a 100 ns residual.
    let example = MisalignmentProblem {
        lead_delays: vec![50e-9, 200e-9],
        cosender_delays: vec![vec![150e-9, 100e-9]],
    };
    let sol = example.solve();
    println!("# Figure 8: multi-receiver wait-time optimisation (paper section 4.6)");
    println!(
        "# worked example: wait = {:.1} ns, residual = {:.1} ns (paper: 0, 100)",
        sol.waits[0] * 1e9,
        sol.max_misalignment * 1e9
    );

    let trials = 200 * ssync_bench::trials_scale();
    let mut rng = StdRng::seed_from_u64(8);
    println!("# {trials} random 2-cosender placements per receiver count");
    println!("# n_receivers\tmean_lp_residual_ns\tmean_naive_residual_ns");
    for n_rx in 1..=6usize {
        let mut lp_sum = 0.0;
        let mut naive_sum = 0.0;
        for _ in 0..trials {
            // Propagation delays at indoor testbed scale: 10-300 ns.
            let p = MisalignmentProblem {
                lead_delays: (0..n_rx).map(|_| rng.gen_range(10e-9..300e-9)).collect(),
                cosender_delays: (0..2)
                    .map(|_| (0..n_rx).map(|_| rng.gen_range(10e-9..300e-9)).collect())
                    .collect(),
            };
            let sol = p.solve();
            lp_sum += sol.max_misalignment;
            // Naive policy: pick waits that align perfectly at receiver 0.
            let naive: Vec<f64> = (0..2)
                .map(|i| p.lead_delays[0] - p.cosender_delays[i][0])
                .collect();
            naive_sum += p.misalignment_of(&naive);
        }
        println!(
            "{n_rx}\t{:.3}\t{:.3}",
            lp_sum / trials as f64 * 1e9,
            naive_sum / trials as f64 * 1e9
        );
    }
}
