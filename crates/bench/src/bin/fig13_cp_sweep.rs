//! Figure 13: joint-transmission SNR vs cyclic-prefix length.
//!
//! Thin wrapper: the experiment itself lives in
//! [`ssync_bench::scenarios::Fig13CpSweep`], runs on the `ssync_exp` harness
//! (parallel across `SSYNC_THREADS` workers, trial counts scaled by
//! `SSYNC_TRIALS`), and prints the same TSV this binary always printed.
//! The `ssync-lab` runner exposes the same scenario with `--threads`,
//! `--trials`, and `--format` flags.

fn main() {
    ssync_exp::bin_main(&ssync_bench::scenarios::Fig13CpSweep);
}
