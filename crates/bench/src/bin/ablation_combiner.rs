//! Ablation: the Smart Combiner and pilot sharing (paper §5–6 design
//! choices), measured on the full sample-level joint chain.
//!
//! * `smart_combiner = false`: both senders transmit identical symbols —
//!   the §6 thought experiment; decodes fail whenever the two channels
//!   land near phase opposition.
//! * `pilot_sharing = false`: both senders drive every pilot; the receiver
//!   can only track a single common phase, so the senders' *relative*
//!   residual rotation goes uncorrected and long frames die.
//!
//! Output: TSV `config  decode_rate  mean_evm_db  n`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_bench::{pin_all_snrs, random_payload, run_once, trials_scale, COSENDER, LEAD, RECEIVER};
use ssync_channel::{FloorPlan, Position};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network};

fn main() {
    let params = OfdmParams::dot11a();
    let models = ChannelModels::testbed(&params);
    let trials = 30 * trials_scale();
    let snr_db = 15.0;

    let configs = [
        ("full_sourcesync", true, true),
        ("no_smart_combiner", false, true),
        ("no_pilot_sharing", true, false),
    ];
    println!("# Ablation: Smart Combiner and shared pilots at {snr_db} dB, R12, 700-byte frames");
    println!("# config\tdecode_rate\tmean_evm_db\tn");
    for (name, smart, sharing) in configs {
        let mut decoded = 0usize;
        let mut evms = Vec::new();
        let mut n = 0usize;
        for t in 0..trials {
            let seed = 400_000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = FloorPlan::testbed();
            let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
            let mut net = Network::build(&mut rng, &params, &positions, &models);
            pin_all_snrs(&mut net, snr_db);
            let payload = random_payload(&mut rng, 700);
            let mut db = DelayDatabase::new();
            if !db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 2) {
                continue;
            }
            let Some(sol) = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER]) else {
                continue;
            };
            let cfg = JointConfig {
                rate: RateId::R12,
                cp_extension: 12,
                smart_combiner: smart,
                pilot_sharing: sharing,
                ..Default::default()
            };
            let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, sol.waits[0]);
            let report = &out.reports[0];
            if !report.header_ok || report.co_channels[0].is_none() {
                continue;
            }
            n += 1;
            if report.payload.as_deref() == Some(&payload[..]) {
                decoded += 1;
            }
            if report.stats.evm_snr_db.is_finite() {
                evms.push(report.stats.evm_snr_db);
            }
        }
        println!(
            "{name}\t{:.2}\t{:.2}\t{n}",
            decoded as f64 / n.max(1) as f64,
            ssync_dsp::stats::mean(&evms)
        );
    }
}
