//! `ssync-lab` — the unified experiment runner and resident experiment
//! service.
//!
//! One-shot mode lists and runs any registered evaluation scenario by
//! name:
//!
//! ```text
//! ssync-lab list
//! ssync-lab run fig12_sync_error --threads 8 --trials 4 --format json
//! ssync-lab run fig08_wait_lp --check golden/fig08.tsv
//! ```
//!
//! Service mode operates a spool directory (see
//! `ssync_exp::service`): enqueue jobs, drain them with sharded workers,
//! resume interrupted runs, inspect the result cache:
//!
//! ```text
//! ssync-lab enqueue testbed_city --dir spool --trials 4
//! ssync-lab serve --dir spool --workers 8 --once
//! ssync-lab resume j000001 --dir spool
//! ssync-lab result j000001 --dir spool --check golden/testbed_city.tsv
//! ssync-lab cache list --dir spool
//! ```
//!
//! Flags for `run`:
//!
//! * `--threads N` — worker count (default: `SSYNC_THREADS` env, else all
//!   cores). Output is byte-identical for every `N`.
//! * `--trials K` — trial multiplier. The flag wins over the
//!   `SSYNC_TRIALS` env (see `ssync_exp::resolve_trials`); a malformed
//!   flag is a hard error, never a silent fallback.
//! * `--format tsv|json` — serialization (default `tsv`).
//! * `--out FILE` — write to a file instead of stdout.
//! * `--check FILE` — golden-regression mode: compare the rendered output
//!   against `FILE`; exit 1 with a first-divergence diagnostic on mismatch.
//! * `--trace FILE` — (observable scenarios only) write a Chrome
//!   trace-event JSON of the run, loadable in Perfetto as a per-node
//!   timeline. The normal rendered output is byte-identical with or
//!   without this flag.
//! * `--metrics FILE` — (observable scenarios only) write the folded
//!   metric-registry snapshot, serialized per `--format`.
//!
//! Flags for the service subcommands:
//!
//! * `--dir DIR` — the spool directory (required everywhere).
//! * `enqueue`: `--trials K` (flag beats env, baked into the spec),
//!   `--seed S`, `--format tsv|json`.
//! * `serve`: `--workers N`, `--once` (exit when the queue drains instead
//!   of polling), `--abort-after-units K` (deterministic kill switch:
//!   stop each job after K fresh units — the CI smoke test's
//!   mid-run "crash"), `--trace FILE` / `--metrics FILE` (service
//!   lifecycle observability via `ssync_obs::ServiceObs`).
//! * `resume`: `--workers N`, `--abort-after-units K`, `--trace`,
//!   `--metrics` — re-runs one claimed job; the checkpoint and cache make
//!   it idempotent.
//! * `result`: `--check FILE` and/or `--out FILE` for a completed job's
//!   result bytes.
//! * `cache`: `list` | `stats` | `clear`.

use ssync_bench::scenarios;
use ssync_exp::service::{
    process_next, resume_job, JobOutcome, JobQueue, JobSpec, ResultCache, ServiceConfig,
    ServiceEvent, ServiceObserver,
};
use ssync_exp::{golden, resolve_trials, run_rendered, Format, RunConfig};
use ssync_obs::{run_observed_rendered, ServiceObs};

fn usage() -> ! {
    eprintln!(
        "usage:\n  ssync-lab list\n  ssync-lab run <scenario> [--threads N] [--trials K] \
         [--format tsv|json] [--out FILE] [--check FILE] [--trace FILE] [--metrics FILE]\n  \
         ssync-lab enqueue <scenario> --dir DIR [--trials K] [--seed S] [--format tsv|json]\n  \
         ssync-lab serve --dir DIR [--workers N] [--once] [--abort-after-units K] \
         [--trace FILE] [--metrics FILE]\n  \
         ssync-lab resume <job-id> --dir DIR [--workers N] [--abort-after-units K] \
         [--trace FILE] [--metrics FILE]\n  \
         ssync-lab result <job-id> --dir DIR [--check FILE] [--out FILE]\n  \
         ssync-lab cache <list|stats|clear> --dir DIR\n\n\
         run `ssync-lab list` for scenario names"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("ssync-lab: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<22} {:<18} description", "name", "paper");
            for s in scenarios::all() {
                println!("{:<22} {:<18} {}", s.name(), s.paper_ref(), s.title());
            }
        }
        Some("run") => run(&args[1..]),
        Some("enqueue") => enqueue(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("resume") => resume(&args[1..]),
        Some("result") => result(&args[1..]),
        Some("cache") => cache(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let Some(scenario) = scenarios::find(name) else {
        fail(&format!(
            "unknown scenario {name:?}; run `ssync-lab list` for the registry"
        ));
    };

    let mut cfg = RunConfig::from_env();
    let mut trials_flag: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} expects a value")))
                .clone()
        };
        match flag.as_str() {
            "--threads" => {
                cfg.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads expects an integer"));
            }
            "--trials" => trials_flag = Some(value("--trials")),
            "--format" => {
                cfg.format = Format::parse(&value("--format"))
                    .unwrap_or_else(|| fail("--format expects `tsv` or `json`"));
            }
            "--out" => out_path = Some(value("--out")),
            "--check" => check_path = Some(value("--check")),
            "--trace" => trace_path = Some(value("--trace")),
            "--metrics" => metrics_path = Some(value("--metrics")),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    // The flag beats the environment; a malformed flag fails loudly
    // rather than silently running the wrong number of trials.
    cfg.trials_scale = resolve_trials(
        trials_flag.as_deref(),
        std::env::var("SSYNC_TRIALS").ok().as_deref(),
    )
    .unwrap_or_else(|e| fail(&e));

    let rendered = if trace_path.is_some() || metrics_path.is_some() {
        let Some(observable) = scenarios::find_observable(name) else {
            let names: Vec<&str> = scenarios::observable().iter().map(|s| s.name()).collect();
            fail(&format!(
                "scenario {name:?} does not support --trace/--metrics \
                 (observable scenarios: {})",
                names.join(", ")
            ));
        };
        let (rendered, obs) = run_observed_rendered(observable, &cfg);
        if let Some(path) = &trace_path {
            std::fs::write(path, obs.chrome_trace_json())
                .unwrap_or_else(|e| fail(&format!("cannot write trace {path:?}: {e}")));
        }
        if let Some(path) = &metrics_path {
            let snapshot = obs.metrics_snapshot();
            let serialized = match cfg.format {
                Format::Tsv => ssync_exp::sink::render_tsv(&snapshot),
                Format::Json => ssync_exp::sink::render_json("metrics", &snapshot),
            };
            std::fs::write(path, serialized)
                .unwrap_or_else(|e| fail(&format!("cannot write metrics {path:?}: {e}")));
        }
        rendered
    } else {
        run_rendered(scenario, &cfg)
    };

    if let Some(path) = &check_path {
        let expected = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read golden file {path:?}: {e}")));
        if let Err(diff) = golden::compare(&expected, &rendered) {
            eprintln!("ssync-lab: golden mismatch for {name} vs {path}: {diff}");
            std::process::exit(1);
        }
        eprintln!("ssync-lab: {name} matches golden {path}");
    }

    match &out_path {
        Some(path) => std::fs::write(path, &rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {path:?}: {e}"))),
        None => print!("{rendered}"),
    }
}

/// Shared service-flag parser: `--dir` plus whatever each subcommand
/// accepts.
struct ServiceArgs {
    dir: Option<String>,
    workers: usize,
    once: bool,
    abort_after_units: Option<usize>,
    trials_flag: Option<String>,
    seed: u64,
    format: Format,
    check_path: Option<String>,
    out_path: Option<String>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
}

fn parse_service_args(args: &[String], allowed: &[&str]) -> ServiceArgs {
    let mut parsed = ServiceArgs {
        dir: None,
        workers: 0,
        once: false,
        abort_after_units: None,
        trials_flag: None,
        seed: 0,
        format: Format::Tsv,
        check_path: None,
        out_path: None,
        trace_path: None,
        metrics_path: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !allowed.contains(&flag.as_str()) {
            fail(&format!("unknown flag {flag:?}"));
        }
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} expects a value")))
                .clone()
        };
        match flag.as_str() {
            "--dir" => parsed.dir = Some(value("--dir")),
            "--workers" => {
                parsed.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers expects an integer"));
            }
            "--once" => parsed.once = true,
            "--abort-after-units" => {
                parsed.abort_after_units = Some(
                    value("--abort-after-units")
                        .parse()
                        .unwrap_or_else(|_| fail("--abort-after-units expects an integer")),
                );
            }
            "--trials" => parsed.trials_flag = Some(value("--trials")),
            "--seed" => {
                parsed.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"));
            }
            "--format" => {
                parsed.format = Format::parse(&value("--format"))
                    .unwrap_or_else(|| fail("--format expects `tsv` or `json`"));
            }
            "--check" => parsed.check_path = Some(value("--check")),
            "--out" => parsed.out_path = Some(value("--out")),
            "--trace" => parsed.trace_path = Some(value("--trace")),
            "--metrics" => parsed.metrics_path = Some(value("--metrics")),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    parsed
}

fn open_spool(dir: &Option<String>) -> JobQueue {
    let Some(dir) = dir else {
        fail("--dir DIR is required for service subcommands");
    };
    JobQueue::open(std::path::Path::new(dir))
        .unwrap_or_else(|e| fail(&format!("cannot open spool {dir:?}: {e}")))
}

fn service_config(parsed: &ServiceArgs) -> ServiceConfig {
    ServiceConfig {
        workers: RunConfig {
            threads: parsed.workers,
            ..Default::default()
        }
        .effective_threads(),
        abort_after_units: parsed.abort_after_units,
    }
}

/// Narrates service progress on stderr (stdout stays reserved for
/// result bytes) and optionally tees into a `ServiceObs`.
struct Narrator {
    obs: Option<ServiceObs>,
}

impl ServiceObserver for Narrator {
    fn on_event(&mut self, event: &ServiceEvent) {
        match event {
            ServiceEvent::JobStarted {
                job,
                scenario,
                units,
            } => eprintln!("ssync-lab: {job}: {scenario} ({units} units)"),
            ServiceEvent::CacheHit { job, key } => {
                eprintln!("ssync-lab: {job}: cache hit ({key:016x})");
            }
            ServiceEvent::CheckpointLoaded {
                job,
                units,
                dropped_tail,
            } => eprintln!(
                "ssync-lab: {job}: restored {units} units from checkpoint{}",
                if *dropped_tail {
                    " (dropped a torn tail)"
                } else {
                    ""
                }
            ),
            ServiceEvent::JobCompleted {
                job,
                units,
                from_checkpoint,
            } => eprintln!(
                "ssync-lab: {job}: done ({units} units, {from_checkpoint} from checkpoint)"
            ),
            ServiceEvent::JobInterrupted { job, done, total } => {
                eprintln!("ssync-lab: {job}: interrupted at {done}/{total} units (resumable)");
            }
            _ => {}
        }
        if let Some(obs) = &mut self.obs {
            obs.on_event(event);
        }
    }
}

impl Narrator {
    fn new(want_obs: bool) -> Narrator {
        Narrator {
            obs: want_obs.then(ServiceObs::new),
        }
    }

    /// Writes the requested observability artifacts.
    fn export(&self, parsed: &ServiceArgs) {
        let Some(obs) = &self.obs else { return };
        if let Some(path) = &parsed.trace_path {
            std::fs::write(path, obs.chrome_trace_json())
                .unwrap_or_else(|e| fail(&format!("cannot write trace {path:?}: {e}")));
        }
        if let Some(path) = &parsed.metrics_path {
            let serialized = match parsed.format {
                Format::Tsv => ssync_exp::sink::render_tsv(&obs.metrics_snapshot()),
                Format::Json => ssync_exp::sink::render_json("metrics", &obs.metrics_snapshot()),
            };
            std::fs::write(path, serialized)
                .unwrap_or_else(|e| fail(&format!("cannot write metrics {path:?}: {e}")));
        }
    }
}

fn enqueue(args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    if scenarios::find(name).is_none() {
        fail(&format!(
            "unknown scenario {name:?}; run `ssync-lab list` for the registry"
        ));
    }
    let parsed = parse_service_args(&args[1..], &["--dir", "--trials", "--seed", "--format"]);
    // Enqueue-time resolution is final: the resolved count is baked into
    // the spec, and the serving process never re-reads SSYNC_TRIALS — the
    // trials a job is enqueued with are the trials it runs with.
    let trials = resolve_trials(
        parsed.trials_flag.as_deref(),
        std::env::var("SSYNC_TRIALS").ok().as_deref(),
    )
    .unwrap_or_else(|e| fail(&e));
    let queue = open_spool(&parsed.dir);
    let spec = JobSpec {
        scenario: name.clone(),
        trials,
        seed: parsed.seed,
        format: parsed.format,
    };
    let id = queue
        .enqueue(&spec)
        .unwrap_or_else(|e| fail(&format!("cannot enqueue: {e}")));
    println!("{id}");
}

fn serve(args: &[String]) {
    let parsed = parse_service_args(
        args,
        &[
            "--dir",
            "--workers",
            "--once",
            "--abort-after-units",
            "--trace",
            "--metrics",
            "--format",
        ],
    );
    let queue = open_spool(&parsed.dir);
    let svc = service_config(&parsed);
    let mut narrator = Narrator::new(parsed.trace_path.is_some() || parsed.metrics_path.is_some());
    let registry = scenarios::LabRegistry;
    loop {
        match process_next(&queue, &registry, &svc, &mut narrator) {
            Ok(Some(_)) => continue,
            Ok(None) => {
                if parsed.once {
                    break;
                }
                // Resident mode: poll the spool. Wall-clock here shapes
                // only latency, never result bytes.
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            Err(e) => {
                narrator.export(&parsed);
                fail(&format!("job failed: {e}"));
            }
        }
    }
    narrator.export(&parsed);
}

fn resume(args: &[String]) {
    let Some(id) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let parsed = parse_service_args(
        &args[1..],
        &[
            "--dir",
            "--workers",
            "--abort-after-units",
            "--trace",
            "--metrics",
            "--format",
        ],
    );
    let queue = open_spool(&parsed.dir);
    let svc = service_config(&parsed);
    let mut narrator = Narrator::new(parsed.trace_path.is_some() || parsed.metrics_path.is_some());
    let outcome = resume_job(&queue, id, &scenarios::LabRegistry, &svc, &mut narrator)
        .unwrap_or_else(|e| fail(&format!("cannot resume {id}: {e}")));
    narrator.export(&parsed);
    if let JobOutcome::Interrupted { done, total } = outcome {
        eprintln!("ssync-lab: {id} still interrupted at {done}/{total}");
        std::process::exit(3);
    }
}

fn result(args: &[String]) {
    let Some(id) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let parsed = parse_service_args(&args[1..], &["--dir", "--check", "--out"]);
    let queue = open_spool(&parsed.dir);
    let spec = queue
        .job_spec(id)
        .unwrap_or_else(|e| fail(&format!("unknown job {id}: {e}")));
    let path = queue.result_path(id, spec.format);
    let rendered = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        let status = queue.read_status(id).unwrap_or_else(|_| "unknown".into());
        fail(&format!(
            "no result for {id} (status: {status}): {e}; \
             run `ssync-lab resume {id}` to finish it"
        ))
    });
    if let Some(check) = &parsed.check_path {
        let expected = std::fs::read_to_string(check)
            .unwrap_or_else(|e| fail(&format!("cannot read golden file {check:?}: {e}")));
        if let Err(diff) = golden::compare(&expected, &rendered) {
            eprintln!("ssync-lab: golden mismatch for {id} vs {check}: {diff}");
            std::process::exit(1);
        }
        eprintln!("ssync-lab: {id} matches golden {check}");
    }
    match &parsed.out_path {
        Some(out) => std::fs::write(out, &rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {out:?}: {e}"))),
        None => print!("{rendered}"),
    }
}

fn cache(args: &[String]) {
    let Some(action) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let parsed = parse_service_args(&args[1..], &["--dir"]);
    let queue = open_spool(&parsed.dir);
    let cache = ResultCache::open(&queue.cache_dir())
        .unwrap_or_else(|e| fail(&format!("cannot open cache: {e}")));
    match action.as_str() {
        "list" => {
            for e in cache
                .entries()
                .unwrap_or_else(|e| fail(&format!("cannot list cache: {e}")))
            {
                println!("{:016x}\t{}\t{}", e.key, e.scenario, e.bytes);
            }
        }
        "stats" => {
            let entries = cache
                .entries()
                .unwrap_or_else(|e| fail(&format!("cannot list cache: {e}")));
            let bytes: usize = entries.iter().map(|e| e.bytes).sum();
            println!("{} entries, {} payload bytes", entries.len(), bytes);
        }
        "clear" => {
            let removed = cache
                .clear()
                .unwrap_or_else(|e| fail(&format!("cannot clear cache: {e}")));
            eprintln!("ssync-lab: removed {removed} cache entries");
        }
        other => fail(&format!("unknown cache action {other:?}: list|stats|clear")),
    }
}
