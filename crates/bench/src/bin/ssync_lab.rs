//! `ssync-lab` — the unified experiment runner.
//!
//! Lists and runs any registered evaluation scenario by name:
//!
//! ```text
//! ssync-lab list
//! ssync-lab run fig12_sync_error --threads 8 --trials 4 --format json
//! ssync-lab run fig08_wait_lp --check golden/fig08.tsv
//! ```
//!
//! Flags for `run`:
//!
//! * `--threads N` — worker count (default: `SSYNC_THREADS` env, else all
//!   cores). Output is byte-identical for every `N`.
//! * `--trials K` — trial multiplier (default: `SSYNC_TRIALS` env, else 1).
//! * `--format tsv|json` — serialization (default `tsv`).
//! * `--out FILE` — write to a file instead of stdout.
//! * `--check FILE` — golden-regression mode: compare the rendered output
//!   against `FILE`; exit 1 with a first-divergence diagnostic on mismatch.
//! * `--trace FILE` — (observable scenarios only) write a Chrome
//!   trace-event JSON of the run, loadable in Perfetto as a per-node
//!   timeline. The normal rendered output is byte-identical with or
//!   without this flag.
//! * `--metrics FILE` — (observable scenarios only) write the folded
//!   metric-registry snapshot, serialized per `--format`.

use ssync_bench::scenarios;
use ssync_exp::{golden, run_rendered, Format, RunConfig};
use ssync_obs::run_observed_rendered;

fn usage() -> ! {
    eprintln!(
        "usage:\n  ssync-lab list\n  ssync-lab run <scenario> [--threads N] [--trials K] \
         [--format tsv|json] [--out FILE] [--check FILE] [--trace FILE] [--metrics FILE]\n\n\
         run `ssync-lab list` for scenario names"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("ssync-lab: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<22} {:<18} description", "name", "paper");
            for s in scenarios::all() {
                println!("{:<22} {:<18} {}", s.name(), s.paper_ref(), s.title());
            }
        }
        Some("run") => run(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let Some(scenario) = scenarios::find(name) else {
        fail(&format!(
            "unknown scenario {name:?}; run `ssync-lab list` for the registry"
        ));
    };

    let mut cfg = RunConfig::from_env();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} expects a value")))
                .clone()
        };
        match flag.as_str() {
            "--threads" => {
                cfg.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads expects an integer"));
            }
            "--trials" => {
                let k: usize = value("--trials")
                    .parse()
                    .unwrap_or_else(|_| fail("--trials expects a positive integer"));
                if k == 0 {
                    fail("--trials expects a positive integer");
                }
                cfg.trials_scale = k;
            }
            "--format" => {
                cfg.format = Format::parse(&value("--format"))
                    .unwrap_or_else(|| fail("--format expects `tsv` or `json`"));
            }
            "--out" => out_path = Some(value("--out")),
            "--check" => check_path = Some(value("--check")),
            "--trace" => trace_path = Some(value("--trace")),
            "--metrics" => metrics_path = Some(value("--metrics")),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    let rendered = if trace_path.is_some() || metrics_path.is_some() {
        let Some(observable) = scenarios::find_observable(name) else {
            let names: Vec<&str> = scenarios::observable().iter().map(|s| s.name()).collect();
            fail(&format!(
                "scenario {name:?} does not support --trace/--metrics \
                 (observable scenarios: {})",
                names.join(", ")
            ));
        };
        let (rendered, obs) = run_observed_rendered(observable, &cfg);
        if let Some(path) = &trace_path {
            std::fs::write(path, obs.chrome_trace_json())
                .unwrap_or_else(|e| fail(&format!("cannot write trace {path:?}: {e}")));
        }
        if let Some(path) = &metrics_path {
            let snapshot = obs.metrics_snapshot();
            let serialized = match cfg.format {
                Format::Tsv => ssync_exp::sink::render_tsv(&snapshot),
                Format::Json => ssync_exp::sink::render_json("metrics", &snapshot),
            };
            std::fs::write(path, serialized)
                .unwrap_or_else(|e| fail(&format!("cannot write metrics {path:?}: {e}")));
        }
        rendered
    } else {
        run_rendered(scenario, &cfg)
    };

    if let Some(path) = &check_path {
        let expected = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read golden file {path:?}: {e}")));
        if let Err(diff) = golden::compare(&expected, &rendered) {
            eprintln!("ssync-lab: golden mismatch for {name} vs {path}: {diff}");
            std::process::exit(1);
        }
        eprintln!("ssync-lab: {name} matches golden {path}");
    }

    match &out_path {
        Some(path) => std::fs::write(path, &rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {path:?}: {e}"))),
        None => print!("{rendered}"),
    }
}
