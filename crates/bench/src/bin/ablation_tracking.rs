//! Ablation: §4.5 delay tracking under node mobility.
//!
//! The co-sender's propagation delay to the receiver drifts over a
//! session (the receiver walks ~0.5 m between frames). With tracking, the
//! ACK-fed wait updates follow the drift; without it, the initial
//! probe-measured wait goes stale and the misalignment grows without
//! bound — exactly why §4.5 exists.
//!
//! Output: TSV `frame  |misalign|_tracked_ns  |misalign|_static_ns`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_bench::{pin_all_snrs, random_payload, run_once, COSENDER, LEAD, RECEIVER};
use ssync_channel::{FloorPlan, Position};
use ssync_core::{tracking_update, DelayDatabase, JointConfig};
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::{ChannelModels, Network, NodeId};

/// Femtoseconds of one-way delay drift per frame (≈0.45 m of motion).
const DRIFT_FS_PER_FRAME: u64 = 1_500_000;

fn drift(net: &mut Network, a: NodeId, b: NodeId) {
    for (x, y) in [(a, b), (b, a)] {
        if let Some(link) = net.medium.link_mut(x, y) {
            link.delay_fs += DRIFT_FS_PER_FRAME;
        }
    }
}

fn main() {
    let params = OfdmParams::wiglan();
    let models = ChannelModels::testbed(&params);
    let n_frames = 12usize;
    let cfg = JointConfig {
        rate: RateId::R6,
        cp_extension: 16,
        ..Default::default()
    };

    let run = |track: bool| -> Vec<f64> {
        let seed = 777u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FloorPlan::testbed();
        let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
        let mut net = Network::build(&mut rng, &params, &positions, &models);
        pin_all_snrs(&mut net, 18.0);
        let mut db = DelayDatabase::new();
        assert!(db.measure_all(&mut net, &mut rng, &[LEAD, COSENDER, RECEIVER], 3));
        let mut wait = db
            .wait_solution(LEAD, &[COSENDER], &[RECEIVER])
            .unwrap()
            .waits[0];
        let mut series = Vec::new();
        for _ in 0..n_frames {
            let payload = random_payload(&mut rng, 60);
            let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, wait);
            let m = out.reports[0].measured_misalign_s[0];
            series.push(out.true_misalign_s[0][0].abs() * 1e9);
            if track {
                if let Some(m) = m {
                    wait = tracking_update(wait, m);
                }
            }
            // The receiver keeps moving away from the co-sender.
            drift(&mut net, COSENDER, RECEIVER);
            let _ = rng.gen::<u64>(); // decorrelate noise across frames
        }
        series
    };

    let tracked = run(true);
    let static_wait = run(false);
    println!("# Ablation: §4.5 delay tracking under mobility");
    println!(
        "# receiver drifts {:.0} ns of path per frame",
        DRIFT_FS_PER_FRAME as f64 * 1e-6
    );
    println!("# frame\ttracked_ns\tstatic_ns");
    for (i, (t, s)) in tracked.iter().zip(&static_wait).enumerate() {
        println!("{i}\t{t:.1}\t{s:.1}");
    }
    println!(
        "# final |misalignment|: tracked {:.1} ns vs static {:.1} ns",
        tracked.last().unwrap(),
        static_wait.last().unwrap()
    );
}
