//! Figure 12: 95th-percentile synchronization error vs SNR.
//!
//! For random (lead, co-sender, receiver) placements with all links pinned
//! to a target SNR, SourceSync runs its full loop: probe-based delay
//! measurement, LP waits, a few §4.5 tracking frames, then a measurement
//! phase. The synchronization error of a placement is the
//! repetition-averaged misalignment measurement (the paper's
//! high-accuracy estimator, realised as an average over `REPS` frames),
//! and the simulator's exact ground truth is reported alongside.
//!
//! Paper target: ≤ 20 ns at the 95th percentile across operational SNRs.
//!
//! Output: TSV `snr_db  p95_measured_ns  p95_true_ns  n_placements`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_bench::{converged_joint, pinned_snr_network, random_payload, run_once, trials_scale};
use ssync_core::{DelayDatabase, JointConfig};
use ssync_dsp::stats::percentile;
use ssync_phy::{OfdmParams, RateId};
use ssync_sim::ChannelModels;

const REPS: usize = 5;

fn main() {
    let params = OfdmParams::wiglan();
    let models = ChannelModels::testbed(&params);
    let cfg = JointConfig {
        rate: RateId::R6,
        cp_extension: 16,
        ..Default::default()
    };
    let placements = 12 * trials_scale();

    println!("# Figure 12: 95th percentile synchronization error vs SNR");
    println!("# numerology: wiglan (128 Msps; 1 sample = 7.8125 ns)");
    println!("# snr_db\tp95_measured_ns\tp95_true_ns\tn");
    for snr_step in 0..=8 {
        let snr_db = 3.0 * snr_step as f64;
        let mut measured_ns = Vec::new();
        let mut true_ns = Vec::new();
        for p in 0..placements {
            let seed = 1000 * snr_step as u64 + p as u64;
            let mut net = pinned_snr_network(&params, &models, snr_db, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
            let payload = random_payload(&mut rng, 60);
            // Converge (probes + tracking warmup), then measure.
            let Some((_, wait)) = converged_joint(&mut net, &mut rng, &payload, &cfg, 3, 3) else {
                continue;
            };
            let mut db = DelayDatabase::new();
            // The measurement frames reuse the converged wait; the delay
            // database is only needed by the co-sender for d(lead, co).
            if !db.measure(
                &mut net,
                &mut rng,
                ssync_bench::LEAD,
                ssync_bench::COSENDER,
                2,
            ) {
                continue;
            }
            let mut meas = Vec::new();
            let mut truth = Vec::new();
            for _ in 0..REPS {
                let out = run_once(&mut net, &mut rng, &payload, &cfg, &db, wait);
                if let Some(m) = out.reports[0].measured_misalign_s[0] {
                    meas.push(m);
                }
                let t = out.true_misalign_s[0][0];
                if t.is_finite() {
                    truth.push(t);
                }
            }
            if meas.is_empty() || truth.is_empty() {
                continue;
            }
            // The repetition estimator: average over frames.
            measured_ns.push(ssync_dsp::stats::mean(&meas).abs() * 1e9);
            true_ns.push(ssync_dsp::stats::mean(&truth).abs() * 1e9);
        }
        if measured_ns.is_empty() {
            println!("{snr_db:.0}\tNA\tNA\t0");
            continue;
        }
        println!(
            "{snr_db:.0}\t{:.2}\t{:.2}\t{}",
            percentile(&measured_ns, 95.0),
            percentile(&true_ns, 95.0),
            measured_ns.len()
        );
    }
}
