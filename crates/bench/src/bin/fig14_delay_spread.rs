//! Figure 14: time-domain power-delay profile of a single sender's channel.
//!
//! One draw of the paper-matched indoor multipath profile at the WiGLAN
//! sample rate; the paper observes ~15 significant taps (117 ns), which
//! sets the CP SourceSync needs after synchronization (Fig. 13's knee).
//!
//! Output: TSV `tap_index  |h|^2` plus summary statistics over many draws.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssync_bench::trials_scale;
use ssync_channel::MultipathProfile;
use ssync_phy::OfdmParams;

fn main() {
    let params = OfdmParams::wiglan();
    let profile = MultipathProfile::testbed(params.sample_rate_hz);
    let mut rng = StdRng::seed_from_u64(42);

    // A representative single realisation, scaled like the paper's plot
    // (which shows |H|² up to ~2.2 with unit-ish mean).
    let ch = profile.draw(&mut rng);
    println!("# Figure 14: delay spread of a single sender (wiglan, 128 Msps)");
    println!("# tap_index\tpower");
    let scale = ch.taps.len() as f64; // display scale: mean tap power ≈ 1
    for (i, t) in ch.taps.iter().enumerate() {
        println!("{i}\t{:.4}", t.norm_sqr() * scale);
    }

    // Significant-tap statistics across draws.
    let n = 200 * trials_scale();
    let counts: Vec<f64> = (0..n)
        .map(|_| profile.draw(&mut rng).significant_taps(0.95) as f64)
        .collect();
    println!(
        "# mean significant taps (95% energy) over {n} draws: {:.1}",
        ssync_dsp::stats::mean(&counts)
    );
    println!(
        "# = {:.0} ns at 128 Msps (paper: ~15 taps = 117 ns)",
        ssync_dsp::stats::mean(&counts) * params.sample_period_fs() as f64 * 1e-6
    );
}
