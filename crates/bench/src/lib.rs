//! Domain-side experiment plumbing for the SourceSync evaluation: network
//! construction, SNR pinning, converged joint transmissions — plus the
//! [`scenarios`] module holding every figure reproduction as a declarative
//! `ssync_exp` scenario.
//!
//! Each scenario prints TSV to stdout (comment lines start with `#`),
//! scales its iteration counts with the `SSYNC_TRIALS` env var (e.g.
//! `SSYNC_TRIALS=4` for 4× the default sample counts), parallelises
//! across `SSYNC_THREADS` workers (default: all cores) without changing a
//! byte of output, and derives all randomness from fixed seeds so output
//! is reproducible byte-for-byte. The generic machinery (parallel
//! executor, sweeps, aggregation, sinks) lives in `ssync_exp`; this crate
//! contributes the physics.

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

pub mod scenarios;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssync_channel::{FloorPlan, Position};
use ssync_core::{CosenderPlan, DelayDatabase, JointConfig, JointOutcome, JointSession};
use ssync_phy::Params;
use ssync_sim::{ChannelModels, Network, NodeId};

/// A two-sender + one-receiver placement with every link pinned to a
/// target mean SNR (the controlled sweep used by Figs. 12–13): geometry
/// (and hence true propagation delays) is random, link gains are
/// overridden after the draw.
pub fn pinned_snr_network(
    params: &Params,
    models: &ChannelModels,
    snr_db: f64,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = FloorPlan::testbed();
    let positions: Vec<Position> = (0..3).map(|_| plan.random_position(&mut rng)).collect();
    let mut net = Network::build(&mut rng, params, &positions, models);
    pin_all_snrs(&mut net, snr_db);
    net
}

/// Overrides every link's amplitude gain so its mean SNR (including the
/// multipath realisation's unit power) equals `snr_db`.
pub fn pin_all_snrs(net: &mut Network, snr_db: f64) {
    let n = net.len();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                pin_link(net, NodeId(i), NodeId(j), snr_db);
            }
        }
    }
}

/// Overrides one directed link's gain to a target mean SNR (delegates to
/// [`Network::pin_snr_db`], the shared pinning primitive).
pub fn pin_link(net: &mut Network, a: NodeId, b: NodeId, snr_db: f64) {
    net.pin_snr_db(a, b, snr_db);
}

/// The standard three-node cast of the synchronization experiments.
pub const LEAD: NodeId = NodeId(0);
/// The co-sender node.
pub const COSENDER: NodeId = NodeId(1);
/// The receiver node.
pub const RECEIVER: NodeId = NodeId(2);

/// One converged SourceSync joint transmission: probes the pairs, solves
/// waits, runs `warmup` tracking frames (§4.5 feedback), then returns the
/// final outcome and the converged wait.
pub fn converged_joint(
    net: &mut Network,
    rng: &mut StdRng,
    payload: &[u8],
    cfg: &JointConfig,
    n_probes: usize,
    warmup: usize,
) -> Option<(JointOutcome, f64)> {
    let mut db = DelayDatabase::new();
    if !db.measure_all(net, rng, &[LEAD, COSENDER, RECEIVER], n_probes) {
        return None;
    }
    let sol = db.wait_solution(LEAD, &[COSENDER], &[RECEIVER])?;
    let mut wait = sol.waits[0];
    for _ in 0..warmup {
        let out = run_once(net, rng, payload, cfg, &db, wait);
        if let Some(m) = out.reports[0].measured_misalign_s[0] {
            wait = ssync_core::tracking_update(wait, m);
        }
    }
    let out = run_once(net, rng, payload, cfg, &db, wait);
    Some((out, wait))
}

/// Runs one joint transmission with an explicit wait, through the staged
/// [`JointSession`] (identical in every byte to the historical
/// `run_joint_transmission` path — the golden tests pin this).
pub fn run_once(
    net: &mut Network,
    rng: &mut StdRng,
    payload: &[u8],
    cfg: &JointConfig,
    db: &DelayDatabase,
    wait_s: f64,
) -> JointOutcome {
    JointSession::new(LEAD)
        .cosender(CosenderPlan {
            node: COSENDER,
            wait_s,
        })
        .receiver(RECEIVER)
        .payload(payload)
        .config(*cfg)
        .run(net, rng, db)
}

/// A random payload of `len` bytes.
pub fn random_payload(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_phy::OfdmParams;

    #[test]
    fn pinned_network_hits_target_snr() {
        let params = OfdmParams::dot11a();
        let models = ChannelModels::testbed(&params);
        let net = pinned_snr_network(&params, &models, 15.0, 1);
        for (a, b) in [(LEAD, COSENDER), (LEAD, RECEIVER), (COSENDER, RECEIVER)] {
            let snr = net.snr_db(a, b);
            assert!((snr - 15.0).abs() < 0.01, "{a}->{b}: {snr}");
        }
    }

    #[test]
    fn converged_joint_succeeds_at_high_snr() {
        let params = OfdmParams::dot11a();
        let models = ChannelModels::clean(&params);
        let mut net = pinned_snr_network(&params, &models, 25.0, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let payload = random_payload(&mut rng, 100);
        let cfg = JointConfig::default();
        let (out, _wait) =
            converged_joint(&mut net, &mut rng, &payload, &cfg, 2, 2).expect("converged");
        assert!(out.reports[0].header_ok);
        assert_eq!(out.reports[0].payload.as_deref(), Some(&payload[..]));
    }
}
