//! The typed trace-event taxonomy.
//!
//! Every observable thing the stack does is one [`TraceEventKind`]
//! variant. The taxonomy is deliberately closed (no free-form string
//! events on the hot path): a closed enum keeps emission allocation-free,
//! makes exhaustive exporter mappings a compile error to miss, and pins
//! the event vocabulary DESIGN.md documents.
//!
//! Field types mirror the wire formats they describe (`u16` MAC
//! addresses and sequence numbers, `u64` femtoseconds) so an event is a
//! faithful record, not a lossy rounding of one.

use ssync_exp::record::Value;

/// What kind of frame an on-air event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// A plain unicast or broadcast DATA frame (payload + batch map).
    Data,
    /// A unicast ACK.
    Ack,
    /// The destination's batch-map broadcast.
    BatchMap,
    /// A joint frame's sync header (the lead's announcement).
    SyncHeader,
    /// A co-sender's training slot.
    Training,
    /// The space-time-coded joint data section.
    JointData,
}

impl FrameClass {
    /// Stable lower-snake label used by every exporter.
    pub fn label(&self) -> &'static str {
        match self {
            FrameClass::Data => "data",
            FrameClass::Ack => "ack",
            FrameClass::BatchMap => "batch_map",
            FrameClass::SyncHeader => "sync_header",
            FrameClass::Training => "training",
            FrameClass::JointData => "joint_data",
        }
    }
}

/// Compact receive-chain diagnostics attached to rx events — the trace
/// form of `ssync_phy::RxDiagnostics` (the full struct carries whole
/// channel estimates; events carry the scalars the paper's plots use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxDiagSummary {
    /// Mean SNR across occupied carriers, dB.
    pub mean_snr_db: f64,
    /// Decision-directed EVM SNR over data symbols, dB.
    pub evm_snr_db: f64,
    /// Estimated carrier-frequency offset, Hz.
    pub cfo_hz: f64,
    /// Residual timing offset from the channel phase slope, samples.
    pub timing_offset_samples: f64,
}

/// Why a co-sender stayed silent — the trace-level mirror of
/// `ssync_core::session::JoinFailure`, payload-free so `ssync_obs` stays
/// below `ssync_core` in the dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinFailureClass {
    /// Sync header never decoded.
    NoDetect,
    /// Decoded frame was not joint-flagged.
    NotJointFlagged,
    /// Joint-flagged payload did not parse as a sync header.
    MalformedHeader,
    /// Header announced a different packet.
    WrongPacket,
    /// No delay-database entry for the lead↔co-sender pair.
    MissingDelay,
}

impl JoinFailureClass {
    /// Stable lower-snake label used by every exporter.
    pub fn label(&self) -> &'static str {
        match self {
            JoinFailureClass::NoDetect => "no_detect",
            JoinFailureClass::NotJointFlagged => "not_joint_flagged",
            JoinFailureClass::MalformedHeader => "malformed_header",
            JoinFailureClass::WrongPacket => "wrong_packet",
            JoinFailureClass::MissingDelay => "missing_delay",
        }
    }
}

/// One join attempt's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinResult {
    /// Training + data went on the air; the co-sender measured this
    /// lead-relative CFO from the sync header.
    Joined {
        /// Measured `f_lead − f_co`, Hz.
        cfo_hz: f64,
    },
    /// The typed first failure.
    Failed(JoinFailureClass),
}

/// A typed trace event. See the module docs for the taxonomy rationale.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A frame (or frame section) this node put on the air.
    FrameTx {
        /// What went on the air.
        class: FrameClass,
        /// MPDU / section length in bytes (0 where not byte-framed).
        bytes: u32,
        /// Packet / sequence number the frame carries.
        seq: u16,
        /// Destination MAC address (`0xFFFF` broadcast).
        dst: u16,
    },
    /// A frame this node's receive chain recovered, with the decode
    /// diagnostics the chain measured on the way.
    FrameRx {
        /// What was recovered.
        class: FrameClass,
        /// Sender MAC address.
        src: u16,
        /// Packet / sequence number the frame carries.
        seq: u16,
        /// Receive-chain measurements (absent when the capture never
        /// reached the diagnostics stage).
        diag: Option<RxDiagSummary>,
    },
    /// The DCF granted this station a transmission attempt.
    DcfAttempt {
        /// Scheduled attempt instant, femtoseconds.
        at_fs: u64,
        /// Retry count the contender is at.
        retries: u32,
    },
    /// A pending attempt was frozen by a busy air period and rescheduled
    /// (802.11 countdown freeze).
    DcfDefer {
        /// The attempt instant that was frozen, femtoseconds.
        was_fs: u64,
        /// Start of the busy period that froze it, femtoseconds.
        busy_from_fs: u64,
    },
    /// Stop-and-wait ARQ scheduled a retransmission.
    ArqRetry {
        /// The packet being retried.
        seq: u16,
        /// Retry count after this failure.
        retries: u32,
    },
    /// ARQ gave up on a packet.
    PacketAbandoned {
        /// The abandoned packet.
        seq: u16,
    },
    /// An ExOR forwarder spent one opportunistic transmission of its
    /// per-packet budget.
    ExorForward {
        /// The forwarded packet.
        packet: u16,
        /// Budget spent on this packet after this transmission.
        tx_count: u32,
    },
    /// A forwarder led a SourceSync joint frame (plain→joint escalation).
    JointLead {
        /// The packet the joint frame carries.
        packet: u16,
        /// Co-sender slots offered.
        cosenders: u8,
    },
    /// One co-sender's join-stage outcome against a lead frame.
    JoinOutcome {
        /// The lead's MAC address.
        lead: u16,
        /// The announced packet.
        packet: u16,
        /// Joined (with measured CFO) or the typed first failure.
        result: JoinResult,
    },
    /// One receiver's joint-decode outcome.
    JointDecode {
        /// The lead's MAC address.
        lead: u16,
        /// Whether the combined payload survived its CRC.
        ok: bool,
        /// Combiner EVM SNR, dB.
        evm_snr_db: f64,
        /// Mean effective per-carrier gain `Σ|H|²`.
        mean_gain: f64,
    },
    /// A packet reached the destination.
    Delivered {
        /// The delivered packet.
        packet: u16,
        /// `"opportunistic"` or `"cleanup"`.
        via: &'static str,
    },
    /// A lookup that older code silently zeroed came up empty (the
    /// counter twin lives in the metric registry).
    LookupMiss {
        /// Which lookup.
        what: &'static str,
    },
    /// An experiment-service job lifecycle edge (started / completed /
    /// interrupted). Stamped with *logical* service time — the event
    /// ordinal, not wall-clock — so service traces are deterministic at
    /// any worker count.
    ServiceJob {
        /// `"started"`, `"completed"`, or `"interrupted"`.
        what: &'static str,
        /// Units done at this edge (0 at start, total at completion).
        done: u32,
        /// Total units in the job.
        units: u32,
    },
    /// A result-cache interaction of a service job.
    ServiceCache {
        /// `"hit"`, `"miss"`, or `"stored"`.
        what: &'static str,
        /// The spec's cache key.
        key: u64,
        /// Stored payload size (0 for hit/miss).
        bytes: u32,
    },
    /// A checkpoint restored previously completed units into a job.
    ServiceCheckpoint {
        /// Units restored.
        restored: u32,
        /// Whether a torn/corrupt tail was discarded (and recomputed).
        dropped_tail: bool,
    },
    /// One service unit finished, in index order (restored units replay
    /// through this too, flagged).
    ServiceUnit {
        /// Unit index.
        unit: u32,
        /// Units done so far, including this one.
        done: u32,
        /// Total units.
        total: u32,
        /// True when served by the checkpoint rather than computed.
        from_checkpoint: bool,
    },
}

impl TraceEventKind {
    /// The stable exporter-facing event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::FrameTx { .. } => "frame_tx",
            TraceEventKind::FrameRx { .. } => "frame_rx",
            TraceEventKind::DcfAttempt { .. } => "dcf_attempt",
            TraceEventKind::DcfDefer { .. } => "dcf_defer",
            TraceEventKind::ArqRetry { .. } => "arq_retry",
            TraceEventKind::PacketAbandoned { .. } => "packet_abandoned",
            TraceEventKind::ExorForward { .. } => "exor_forward",
            TraceEventKind::JointLead { .. } => "joint_lead",
            TraceEventKind::JoinOutcome { .. } => "join_outcome",
            TraceEventKind::JointDecode { .. } => "joint_decode",
            TraceEventKind::Delivered { .. } => "delivered",
            TraceEventKind::LookupMiss { .. } => "lookup_miss",
            TraceEventKind::ServiceJob { .. } => "service_job",
            TraceEventKind::ServiceCache { .. } => "service_cache",
            TraceEventKind::ServiceCheckpoint { .. } => "service_checkpoint",
            TraceEventKind::ServiceUnit { .. } => "service_unit",
        }
    }

    /// The event's arguments as `(key, value)` pairs, in a fixed order —
    /// the single source every exporter renders from.
    pub fn args(&self) -> Vec<(&'static str, Value)> {
        fn diag_args(out: &mut Vec<(&'static str, Value)>, diag: &Option<RxDiagSummary>) {
            if let Some(d) = diag {
                out.push(("snr_db", Value::F(d.mean_snr_db, 2)));
                out.push(("evm_snr_db", Value::F(d.evm_snr_db, 2)));
                out.push(("cfo_hz", Value::F(d.cfo_hz, 1)));
                out.push(("timing_samples", Value::F(d.timing_offset_samples, 3)));
            }
        }
        let mut a = Vec::new();
        match self {
            TraceEventKind::FrameTx {
                class,
                bytes,
                seq,
                dst,
            } => {
                a.push(("class", Value::s(class.label())));
                a.push(("bytes", Value::Int(*bytes as i64)));
                a.push(("seq", Value::Int(*seq as i64)));
                a.push(("dst", Value::Int(*dst as i64)));
            }
            TraceEventKind::FrameRx {
                class,
                src,
                seq,
                diag,
            } => {
                a.push(("class", Value::s(class.label())));
                a.push(("src", Value::Int(*src as i64)));
                a.push(("seq", Value::Int(*seq as i64)));
                diag_args(&mut a, diag);
            }
            TraceEventKind::DcfAttempt { at_fs, retries } => {
                a.push(("at_fs", Value::Int(*at_fs as i64)));
                a.push(("retries", Value::Int(*retries as i64)));
            }
            TraceEventKind::DcfDefer {
                was_fs,
                busy_from_fs,
            } => {
                a.push(("was_fs", Value::Int(*was_fs as i64)));
                a.push(("busy_from_fs", Value::Int(*busy_from_fs as i64)));
            }
            TraceEventKind::ArqRetry { seq, retries } => {
                a.push(("seq", Value::Int(*seq as i64)));
                a.push(("retries", Value::Int(*retries as i64)));
            }
            TraceEventKind::PacketAbandoned { seq } => {
                a.push(("seq", Value::Int(*seq as i64)));
            }
            TraceEventKind::ExorForward { packet, tx_count } => {
                a.push(("packet", Value::Int(*packet as i64)));
                a.push(("tx_count", Value::Int(*tx_count as i64)));
            }
            TraceEventKind::JointLead { packet, cosenders } => {
                a.push(("packet", Value::Int(*packet as i64)));
                a.push(("cosenders", Value::Int(*cosenders as i64)));
            }
            TraceEventKind::JoinOutcome {
                lead,
                packet,
                result,
            } => {
                a.push(("lead", Value::Int(*lead as i64)));
                a.push(("packet", Value::Int(*packet as i64)));
                match result {
                    JoinResult::Joined { cfo_hz } => {
                        a.push(("result", Value::s("joined")));
                        a.push(("cfo_hz", Value::F(*cfo_hz, 1)));
                    }
                    JoinResult::Failed(class) => {
                        a.push(("result", Value::s(class.label())));
                    }
                }
            }
            TraceEventKind::JointDecode {
                lead,
                ok,
                evm_snr_db,
                mean_gain,
            } => {
                a.push(("lead", Value::Int(*lead as i64)));
                a.push(("ok", Value::Int(*ok as i64)));
                a.push(("evm_snr_db", Value::F(*evm_snr_db, 2)));
                a.push(("mean_gain", Value::F(*mean_gain, 4)));
            }
            TraceEventKind::Delivered { packet, via } => {
                a.push(("packet", Value::Int(*packet as i64)));
                a.push(("via", Value::s(*via)));
            }
            TraceEventKind::LookupMiss { what } => {
                a.push(("what", Value::s(*what)));
            }
            TraceEventKind::ServiceJob { what, done, units } => {
                a.push(("what", Value::s(*what)));
                a.push(("done", Value::Int(*done as i64)));
                a.push(("units", Value::Int(*units as i64)));
            }
            TraceEventKind::ServiceCache { what, key, bytes } => {
                a.push(("what", Value::s(*what)));
                a.push(("key", Value::s(format!("{key:016x}"))));
                a.push(("bytes", Value::Int(*bytes as i64)));
            }
            TraceEventKind::ServiceCheckpoint {
                restored,
                dropped_tail,
            } => {
                a.push(("restored", Value::Int(*restored as i64)));
                a.push(("dropped_tail", Value::Int(*dropped_tail as i64)));
            }
            TraceEventKind::ServiceUnit {
                unit,
                done,
                total,
                from_checkpoint,
            } => {
                a.push(("unit", Value::Int(*unit as i64)));
                a.push(("done", Value::Int(*done as i64)));
                a.push(("total", Value::Int(*total as i64)));
                a.push(("from_checkpoint", Value::Int(*from_checkpoint as i64)));
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels_are_stable() {
        assert_eq!(FrameClass::SyncHeader.label(), "sync_header");
        assert_eq!(JoinFailureClass::MissingDelay.label(), "missing_delay");
        assert_eq!(
            TraceEventKind::Delivered {
                packet: 3,
                via: "cleanup"
            }
            .name(),
            "delivered"
        );
    }

    #[test]
    fn args_render_in_fixed_order() {
        let kind = TraceEventKind::FrameRx {
            class: FrameClass::Data,
            src: 2,
            seq: 5,
            diag: Some(RxDiagSummary {
                mean_snr_db: 12.345,
                evm_snr_db: 10.0,
                cfo_hz: -310.25,
                timing_offset_samples: 0.5,
            }),
        };
        let keys: Vec<&str> = kind.args().iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec![
                "class",
                "src",
                "seq",
                "snr_db",
                "evm_snr_db",
                "cfo_hz",
                "timing_samples"
            ]
        );
        assert_eq!(kind.args()[3].1.render_json(), "12.35");
    }

    #[test]
    fn join_outcome_renders_both_arms() {
        let joined = TraceEventKind::JoinOutcome {
            lead: 1,
            packet: 2,
            result: JoinResult::Joined { cfo_hz: 100.0 },
        };
        assert!(joined
            .args()
            .iter()
            .any(|(k, v)| *k == "result" && v.render_tsv() == "joined"));
        let failed = TraceEventKind::JoinOutcome {
            lead: 1,
            packet: 2,
            result: JoinResult::Failed(JoinFailureClass::NoDetect),
        };
        assert!(failed
            .args()
            .iter()
            .any(|(k, v)| *k == "result" && v.render_tsv() == "no_detect"));
    }
}
