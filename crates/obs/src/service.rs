//! Observability for the experiment service: trace spans and per-job
//! metric scopes for queue, cache, and checkpoint events.
//!
//! [`ServiceObs`] implements [`ssync_exp::service::ServiceObserver`]
//! (the dependency arrow points obs → exp, so the service itself stays
//! obs-free) and turns the service's lifecycle stream into the same two
//! artifacts every observable scenario produces: a Chrome trace (one
//! Perfetto lane per job) and a metric-registry snapshot (global
//! throughput counters plus a `Scope::Node(job)` scope per job, indexed
//! by the job's claim ordinal).
//!
//! ## Determinism
//!
//! The service emits events in *logical* time — index-ordered unit
//! completions, sequence-ordered jobs — so `ServiceObs` stamps each event
//! with its ordinal in the stream, never wall-clock. Two runs of the same
//! spool produce byte-identical trace JSON and metric snapshots at any
//! worker count; the resume tests assert exactly that.

use ssync_exp::service::{ServiceEvent, ServiceObserver};

use crate::event::TraceEventKind;
use crate::metrics::{MetricRegistry, Scope};
use crate::trace::{TraceRecorder, TraceSet};

/// Collects the service's event stream into a trace and a metric
/// registry. One instance observes a whole `serve` session (any number
/// of jobs).
pub struct ServiceObs {
    recorder: TraceRecorder,
    metrics: MetricRegistry,
    /// Logical clock: the event ordinal, used as the trace timestamp.
    tick: u64,
    /// Job ids in first-seen (claim) order; a job's position is its
    /// Perfetto lane and its `Scope::Node` index.
    jobs: Vec<String>,
}

impl Default for ServiceObs {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceObs {
    /// An empty observer.
    pub fn new() -> ServiceObs {
        ServiceObs {
            recorder: TraceRecorder::enabled(),
            metrics: MetricRegistry::new(),
            tick: 0,
            jobs: Vec::new(),
        }
    }

    fn lane(&mut self, job: &str) -> u32 {
        if let Some(i) = self.jobs.iter().position(|j| j == job) {
            return i as u32;
        }
        self.jobs.push(job.to_string());
        (self.jobs.len() - 1) as u32
    }

    /// Jobs seen so far, in claim order (lane order).
    pub fn jobs(&self) -> &[String] {
        &self.jobs
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.recorder.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.recorder.is_empty()
    }

    /// The folded metric registry (global service counters plus one
    /// `Scope::Node(lane)` scope per job).
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The metric snapshot, renderable through `ssync_exp::sink`.
    pub fn metrics_snapshot(&self) -> ssync_exp::record::Output {
        self.metrics.snapshot()
    }

    /// The whole session as Chrome trace-event JSON: one `"service"`
    /// track, one lane per job, logical-time stamps.
    pub fn chrome_trace_json(&self) -> String {
        let mut set = TraceSet::new();
        set.push("service", self.recorder.clone());
        crate::chrome::chrome_trace_json(&set)
    }
}

impl ServiceObserver for ServiceObs {
    fn on_event(&mut self, event: &ServiceEvent) {
        let t = self.tick;
        self.tick += 1;
        match event {
            ServiceEvent::JobStarted { job, units, .. } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/jobs_started", Scope::Global)
                    .inc();
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceJob {
                        what: "started",
                        done: 0,
                        units: *units as u32,
                    },
                );
            }
            ServiceEvent::CacheHit { job, key } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/cache_hits", Scope::Global)
                    .inc();
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceCache {
                        what: "hit",
                        key: *key,
                        bytes: 0,
                    },
                );
            }
            ServiceEvent::CacheMiss { job, key } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/cache_misses", Scope::Global)
                    .inc();
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceCache {
                        what: "miss",
                        key: *key,
                        bytes: 0,
                    },
                );
            }
            ServiceEvent::CheckpointLoaded {
                job,
                units,
                dropped_tail,
            } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/units_restored", Scope::Global)
                    .add(*units as u64);
                if *dropped_tail {
                    self.metrics
                        .counter("service/checkpoint_tails_dropped", Scope::Global)
                        .inc();
                }
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceCheckpoint {
                        restored: *units as u32,
                        dropped_tail: *dropped_tail,
                    },
                );
            }
            ServiceEvent::UnitFinished {
                job,
                unit,
                done,
                total,
                from_checkpoint,
            } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/units_done", Scope::Node(lane))
                    .inc();
                if !*from_checkpoint {
                    self.metrics
                        .counter("service/units_computed", Scope::Global)
                        .inc();
                }
                // A one-tick span: units occupy [t, t+1) of logical time,
                // so a job's lane reads as a progress bar in Perfetto.
                self.recorder.emit_span(
                    t,
                    1,
                    lane,
                    TraceEventKind::ServiceUnit {
                        unit: *unit as u32,
                        done: *done as u32,
                        total: *total as u32,
                        from_checkpoint: *from_checkpoint,
                    },
                );
            }
            ServiceEvent::CacheStored { job, key, bytes } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/cache_stores", Scope::Global)
                    .inc();
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceCache {
                        what: "stored",
                        key: *key,
                        bytes: *bytes as u32,
                    },
                );
            }
            ServiceEvent::JobCompleted { job, units, .. } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/jobs_completed", Scope::Global)
                    .inc();
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceJob {
                        what: "completed",
                        done: *units as u32,
                        units: *units as u32,
                    },
                );
            }
            ServiceEvent::JobInterrupted { job, done, total } => {
                let lane = self.lane(job);
                self.metrics
                    .counter("service/jobs_interrupted", Scope::Global)
                    .inc();
                self.recorder.emit(
                    t,
                    lane,
                    TraceEventKind::ServiceJob {
                        what: "interrupted",
                        done: *done as u32,
                        units: *total as u32,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_stream() -> Vec<ServiceEvent> {
        vec![
            ServiceEvent::JobStarted {
                job: "j000001".into(),
                scenario: "toy".into(),
                units: 2,
            },
            ServiceEvent::CacheMiss {
                job: "j000001".into(),
                key: 0xabcd,
            },
            ServiceEvent::CheckpointLoaded {
                job: "j000001".into(),
                units: 1,
                dropped_tail: true,
            },
            ServiceEvent::UnitFinished {
                job: "j000001".into(),
                unit: 0,
                done: 1,
                total: 2,
                from_checkpoint: true,
            },
            ServiceEvent::UnitFinished {
                job: "j000001".into(),
                unit: 1,
                done: 2,
                total: 2,
                from_checkpoint: false,
            },
            ServiceEvent::CacheStored {
                job: "j000001".into(),
                key: 0xabcd,
                bytes: 128,
            },
            ServiceEvent::JobCompleted {
                job: "j000001".into(),
                units: 2,
                from_checkpoint: 1,
            },
            ServiceEvent::CacheHit {
                job: "j000002".into(),
                key: 0xabcd,
            },
        ]
    }

    #[test]
    fn lanes_follow_claim_order_and_counters_fold() {
        let mut obs = ServiceObs::new();
        for e in demo_stream() {
            obs.on_event(&e);
        }
        assert_eq!(obs.jobs(), ["j000001".to_string(), "j000002".to_string()]);
        assert_eq!(obs.len(), 8);
        let m = obs.metrics();
        assert_eq!(
            m.counter_value("service/jobs_started", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/cache_misses", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/cache_hits", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/cache_stores", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/units_restored", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/checkpoint_tails_dropped", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/units_computed", Scope::Global),
            Some(1)
        );
        assert_eq!(
            m.counter_value("service/units_done", Scope::Node(0)),
            Some(2)
        );
        assert_eq!(m.counter_value("service/units_done", Scope::Node(1)), None);
        assert_eq!(
            m.counter_value("service/jobs_completed", Scope::Global),
            Some(1)
        );
    }

    #[test]
    fn identical_event_streams_export_identical_artifacts() {
        let render = || {
            let mut obs = ServiceObs::new();
            for e in demo_stream() {
                obs.on_event(&e);
            }
            (
                obs.chrome_trace_json(),
                ssync_exp::sink::render_tsv(&obs.metrics_snapshot()),
            )
        };
        let (trace_a, metrics_a) = render();
        let (trace_b, metrics_b) = render();
        assert_eq!(trace_a, trace_b);
        assert_eq!(metrics_a, metrics_b);
        // Logical timestamps, not wall-clock: the event ordinal appears
        // as the microsecond field Perfetto reads.
        assert!(trace_a.contains("\"name\": \"service_unit\""));
        assert!(trace_a.contains("\"name\": \"service\""));
    }
}
