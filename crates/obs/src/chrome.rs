//! Chrome trace-event JSON export, so a testbed run opens in Perfetto
//! (<https://ui.perfetto.dev>) as a per-node timeline.
//!
//! Mapping: each [`TraceSet`] track (one trial/variant) becomes a
//! Perfetto *process* (`pid` = track index, named by the track label);
//! each node becomes a *thread* lane (`tid` = node id, named `node N`).
//! Span events (`dur_fs > 0`, e.g. frames on the air) render as complete
//! events (`"ph":"X"`); instantaneous events as thread-scoped instants
//! (`"ph":"i","s":"t"`).
//!
//! Determinism: timestamps are microseconds, required by the format, but
//! they are rendered by **exact integer arithmetic** on the femtosecond
//! values (`fs / 10⁹` whole µs, `fs % 10⁹` as nine fixed fraction
//! digits) — no float formatting anywhere, so the byte stream is a pure
//! function of the recorded events.

use ssync_exp::record::json_string;

use crate::trace::{TraceEvent, TraceSet};

/// Femtoseconds per microsecond.
const FS_PER_US: u64 = 1_000_000_000;

/// Renders a femtosecond instant as a decimal-microsecond literal with
/// exactly nine fraction digits (`"12.000000345"`).
fn us_literal(fs: u64) -> String {
    format!("{}.{:09}", fs / FS_PER_US, fs % FS_PER_US)
}

fn event_json(pid: usize, e: &TraceEvent) -> String {
    let mut args = String::new();
    for (i, (key, value)) in e.kind.args().iter().enumerate() {
        if i > 0 {
            args.push_str(", ");
        }
        args.push_str(&json_string(key));
        args.push_str(": ");
        args.push_str(&value.render_json());
    }
    let phase = if e.dur_fs > 0 {
        format!("\"ph\": \"X\", \"dur\": {}", us_literal(e.dur_fs))
    } else {
        "\"ph\": \"i\", \"s\": \"t\"".to_string()
    };
    format!(
        "{{\"name\": {}, {}, \"pid\": {}, \"tid\": {}, \"ts\": {}, \"args\": {{{}}}}}",
        json_string(e.kind.name()),
        phase,
        pid,
        e.node,
        us_literal(e.t_fs),
        args
    )
}

fn metadata_json(kind: &str, pid: usize, tid: u32, name: &str) -> String {
    format!(
        "{{\"name\": {}, \"ph\": \"M\", \"pid\": {}, \"tid\": {}, \"args\": {{\"name\": {}}}}}",
        json_string(kind),
        pid,
        tid,
        json_string(name)
    )
}

/// Renders the whole set as a Chrome trace-event JSON object
/// (`{"traceEvents": [...]}`) ending with a newline.
///
/// Metadata events name every track (process) and every node lane it
/// touched (thread); data events follow in merged `(t_fs, seq)` order per
/// track, tracks in insertion order — the same total order everywhere, so
/// the output is byte-identical across thread counts and builds.
pub fn chrome_trace_json(set: &TraceSet) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (label, recorder)) in set.tracks().iter().enumerate() {
        events.push(metadata_json("process_name", pid, 0, label));
        for node in 0..recorder.node_count() as u32 {
            if !recorder.node_events(node).is_empty() {
                events.push(metadata_json(
                    "thread_name",
                    pid,
                    node,
                    &format!("node {node}"),
                ));
            }
        }
        for e in recorder.merged() {
            events.push(event_json(pid, &e));
        }
    }
    format!("{{\"traceEvents\": [\n  {}\n]}}\n", events.join(",\n  "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FrameClass, TraceEventKind};
    use crate::trace::TraceRecorder;

    fn sample_set() -> TraceSet {
        let mut rec = TraceRecorder::enabled();
        rec.emit_span(
            2_500_000_000,
            1_000_000_000,
            0,
            TraceEventKind::FrameTx {
                class: FrameClass::Data,
                bytes: 700,
                seq: 3,
                dst: 2,
            },
        );
        rec.emit(
            123,
            2,
            TraceEventKind::DcfAttempt {
                at_fs: 123,
                retries: 0,
            },
        );
        let mut set = TraceSet::new();
        set.push("trial0/joint", rec);
        set
    }

    #[test]
    fn us_literal_is_exact_integer_arithmetic() {
        assert_eq!(us_literal(0), "0.000000000");
        assert_eq!(us_literal(1), "0.000000001");
        assert_eq!(us_literal(FS_PER_US), "1.000000000");
        assert_eq!(us_literal(2_500_000_123), "2.500000123");
        assert_eq!(us_literal(u64::MAX), "18446744073.709551615");
    }

    #[test]
    fn span_and_instant_phases() {
        let json = chrome_trace_json(&sample_set());
        assert!(json.starts_with("{\"traceEvents\": [\n"));
        assert!(json.ends_with("]}\n"));
        // Span: complete event with duration in µs.
        assert!(json.contains("\"name\": \"frame_tx\", \"ph\": \"X\", \"dur\": 1.000000000"));
        assert!(json.contains("\"ts\": 2.500000000"));
        // Instant: thread-scoped.
        assert!(json.contains("\"name\": \"dcf_attempt\", \"ph\": \"i\", \"s\": \"t\""));
        assert!(json.contains("\"ts\": 0.000000123"));
    }

    #[test]
    fn metadata_names_track_and_touched_lanes_only() {
        let json = chrome_trace_json(&sample_set());
        assert!(json.contains(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {\"name\": \"trial0/joint\"}}"
        ));
        assert!(json.contains("\"args\": {\"name\": \"node 0\"}"));
        assert!(json.contains("\"args\": {\"name\": \"node 2\"}"));
        // Node 1 never emitted: no lane metadata for it.
        assert!(!json.contains("node 1"));
    }

    #[test]
    fn event_args_render_as_json_object() {
        let json = chrome_trace_json(&sample_set());
        assert!(json
            .contains("\"args\": {\"class\": \"data\", \"bytes\": 700, \"seq\": 3, \"dst\": 2}"));
    }

    #[test]
    fn empty_set_is_valid_json() {
        assert_eq!(
            chrome_trace_json(&TraceSet::new()),
            "{\"traceEvents\": [\n  \n]}\n"
        );
    }
}
