//! The [`ObsSnapshot`] trait: one serialisation seam for the stack's
//! diagnostic structs.
//!
//! Before this crate, every layer grew its own diagnostics struct with
//! its own ad-hoc printing (`RxDiagnostics`, `CombinerStats`,
//! `FaultCounters`, `JoinStats`). `ObsSnapshot` gives them one contract:
//! a stable kind label plus an ordered field list of
//! [`ssync_exp::record::Value`]s — which means they all serialise through
//! the same TSV/JSON sink machinery as the golden scenario outputs, with
//! the same fixed-precision float rules.

use ssync_exp::record::{Output, Value};

/// A diagnostics struct that can be serialised through the shared sink.
pub trait ObsSnapshot {
    /// Stable lower-snake label for this snapshot kind
    /// (`"rx_diagnostics"`, `"fault_counters"`, …).
    fn obs_kind(&self) -> &'static str;

    /// The fields in a fixed, documented order. Field names are stable
    /// exporter-facing identifiers; values carry the same fixed-precision
    /// rendering rules as scenario outputs.
    fn obs_fields(&self) -> Vec<(&'static str, Value)>;
}

/// Renders any set of snapshots as one long-format table
/// (`snapshot`/`field`/`value`), in argument order. Long format keeps
/// heterogeneous snapshot kinds in a single table without a union of all
/// their columns.
pub fn snapshot_output(snapshots: &[&dyn ObsSnapshot]) -> Output {
    let mut out = Output::new();
    out.columns(&["snapshot", "field", "value"]);
    for snap in snapshots {
        for (field, value) in snap.obs_fields() {
            out.row(vec![Value::s(snap.obs_kind()), Value::s(field), value]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_exp::sink::{render_json, render_tsv};

    struct Demo;
    impl ObsSnapshot for Demo {
        fn obs_kind(&self) -> &'static str {
            "demo"
        }
        fn obs_fields(&self) -> Vec<(&'static str, Value)> {
            vec![
                ("count", Value::Int(3)),
                ("snr_db", Value::F(12.345, 2)),
                ("mode", Value::s("joint")),
            ]
        }
    }

    #[test]
    fn long_format_table_renders_through_both_sinks() {
        let out = snapshot_output(&[&Demo, &Demo]);
        let tsv = render_tsv(&out);
        assert!(tsv.starts_with("# snapshot\tfield\tvalue\n"));
        assert_eq!(tsv.matches("demo\tcount\t3\n").count(), 2);
        assert!(tsv.contains("demo\tsnr_db\t12.35\n"));
        let json = render_json("snap", &out);
        assert!(json.contains("[\"demo\", \"mode\", \"joint\"]"));
    }

    #[test]
    fn empty_snapshot_list_is_header_only() {
        let out = snapshot_output(&[]);
        assert_eq!(render_tsv(&out), "# snapshot\tfield\tvalue\n");
    }
}
