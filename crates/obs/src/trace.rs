//! The structured trace recorder.
//!
//! A [`TraceRecorder`] is filled by exactly one engine (one trial): events
//! go into per-node buffers stamped with femtosecond sim time and a
//! recorder-global sequence number assigned in emission order. Because a
//! single engine is single-threaded and deterministic, the stream of
//! `(t_fs, seq)` pairs is a pure function of the scenario — host thread
//! count never touches it. Parallel trials each fill their own recorder;
//! [`TraceSet`] holds them labelled in trial order for the exporters.
//!
//! Disabled recorders are free in the sense that matters for the hot
//! path: [`TraceRecorder::emit`] is one predictable branch, and callers
//! gate any *work to produce an event* (cloning diagnostics, formatting)
//! behind [`TraceRecorder::is_enabled`].

use crate::event::TraceEventKind;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event start, femtoseconds.
    pub t_fs: u64,
    /// Duration for span-like events (on-air time); 0 for instants.
    pub dur_fs: u64,
    /// Emission-order sequence number, unique within one recorder. Breaks
    /// ties between events at the same femtosecond so the merged order is
    /// total.
    pub seq: u64,
    /// The node the event belongs to (its Perfetto thread lane).
    pub node: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A per-trial trace recorder with per-node buffers.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    enabled: bool,
    next_seq: u64,
    /// `buffers[node]` holds that node's events in emission order.
    buffers: Vec<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// A recorder that drops everything. This is the hot-path default:
    /// `emit` on a disabled recorder is a single branch.
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// A recorder that keeps events.
    pub fn enabled() -> Self {
        TraceRecorder {
            enabled: true,
            ..TraceRecorder::default()
        }
    }

    /// Whether events are being kept. Callers use this to skip the *cost
    /// of building* an event (e.g. summarising receive diagnostics), not
    /// just its storage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn emit(&mut self, t_fs: u64, node: u32, kind: TraceEventKind) {
        if !self.enabled {
            return;
        }
        self.push(t_fs, 0, node, kind);
    }

    /// Records a span (an event with on-air duration).
    #[inline]
    pub fn emit_span(&mut self, t_fs: u64, dur_fs: u64, node: u32, kind: TraceEventKind) {
        if !self.enabled {
            return;
        }
        self.push(t_fs, dur_fs, node, kind);
    }

    fn push(&mut self, t_fs: u64, dur_fs: u64, node: u32, kind: TraceEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = node as usize;
        if self.buffers.len() <= idx {
            self.buffers.resize_with(idx + 1, Vec::new);
        }
        self.buffers[idx].push(TraceEvent {
            t_fs,
            dur_fs,
            seq,
            node,
            kind,
        });
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of node lanes touched (highest node id + 1).
    pub fn node_count(&self) -> usize {
        self.buffers.len()
    }

    /// One node's events in emission order (empty for untouched lanes).
    pub fn node_events(&self, node: u32) -> &[TraceEvent] {
        // Explicit match rather than an `.unwrap_or` fallback: an
        // out-of-range lane is the documented "untouched lane" case, and
        // spelling it out keeps ssync_lint's `silent-fallback` rule clean.
        match self.buffers.get(node as usize) {
            Some(events) => events.as_slice(),
            None => &[],
        }
    }

    /// All events merged across nodes in event-queue order: ascending
    /// `(t_fs, seq)`. Each per-node buffer is already in emission order
    /// (so ascending `seq`), which makes the merge stable and total.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.buffers.iter().flatten().cloned().collect();
        all.sort_by_key(|e| (e.t_fs, e.seq));
        all
    }
}

/// A labelled collection of recorders — one per (trial, variant) track —
/// in deterministic (trial-index) order. This is what the exporters
/// consume: each track becomes a Perfetto process row.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    tracks: Vec<(String, TraceRecorder)>,
}

impl TraceSet {
    /// An empty set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Appends a track. Callers must push in trial-index order — the set
    /// preserves insertion order and the exporters render it verbatim.
    pub fn push(&mut self, label: impl Into<String>, recorder: TraceRecorder) {
        self.tracks.push((label.into(), recorder));
    }

    /// The tracks in insertion order.
    pub fn tracks(&self) -> &[(String, TraceRecorder)] {
        &self.tracks
    }

    /// Total events across all tracks.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|(_, r)| r.len()).sum()
    }

    /// True when no track holds any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;

    fn marker(seq: u16) -> TraceEventKind {
        TraceEventKind::PacketAbandoned { seq }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut rec = TraceRecorder::disabled();
        rec.emit(10, 0, marker(1));
        rec.emit_span(20, 5, 1, marker(2));
        assert!(rec.is_empty());
        assert!(!rec.is_enabled());
        assert_eq!(rec.node_count(), 0);
    }

    #[test]
    fn merge_orders_by_time_then_sequence() {
        let mut rec = TraceRecorder::enabled();
        // Node 2 emits first at t=100, node 0 later at the same t=100,
        // node 1 at t=50.
        rec.emit(100, 2, marker(0));
        rec.emit(100, 0, marker(1));
        rec.emit(50, 1, marker(2));
        let merged = rec.merged();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].t_fs, 50);
        // Same-femtosecond tie broken by emission order: node 2 before 0.
        assert_eq!(merged[1].node, 2);
        assert_eq!(merged[2].node, 0);
        assert!(merged[1].seq < merged[2].seq);
    }

    #[test]
    fn per_node_buffers_keep_emission_order() {
        let mut rec = TraceRecorder::enabled();
        rec.emit(30, 1, marker(0));
        rec.emit(10, 1, marker(1));
        assert_eq!(rec.node_events(1).len(), 2);
        assert_eq!(rec.node_events(1)[0].t_fs, 30);
        assert_eq!(rec.node_events(0), &[]);
        assert_eq!(rec.node_events(9), &[]);
        assert_eq!(rec.node_count(), 2);
    }

    #[test]
    fn trace_set_preserves_insertion_order() {
        let mut set = TraceSet::new();
        let mut a = TraceRecorder::enabled();
        a.emit(1, 0, marker(0));
        set.push("trial0", a);
        set.push("trial1", TraceRecorder::enabled());
        assert_eq!(set.tracks().len(), 2);
        assert_eq!(set.tracks()[0].0, "trial0");
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }
}
