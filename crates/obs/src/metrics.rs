//! The metric registry: counters, gauges, and histograms with
//! deterministic snapshots.
//!
//! Metrics are keyed by `(name, scope)` in a [`BTreeMap`], so a snapshot
//! iterates in one canonical order no matter what order the metrics were
//! registered in. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! cheap clones of shared interiors, so an engine can register once and
//! bump from its hot loop without re-hashing names.
//!
//! Thread-count determinism comes from the same rule the trace layer
//! uses: each parallel trial fills its *own* registry, and the scenario
//! folds them with [`MetricRegistry::merge`] in trial-index order —
//! counters sum (order-free), gauges last-write-wins (trial order), and
//! histograms concatenate samples (trial order), so the folded snapshot
//! is byte-identical at any thread count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ssync_dsp::stats;
use ssync_exp::record::{Output, Value};

/// What a metric is attached to. The `Ord` derive fixes the snapshot
/// order: global first, then per-node, then per-link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Whole-run metric.
    Global,
    /// Attached to one node.
    Node(u32),
    /// Attached to a directed link `from → to`.
    Link(u32, u32),
}

impl Scope {
    /// Stable label used in snapshots (`-`, `n3`, `l1>2`).
    pub fn label(&self) -> String {
        match self {
            Scope::Global => "-".to_string(),
            Scope::Node(n) => format!("n{n}"),
            Scope::Link(a, b) => format!("l{a}>{b}"),
        }
    }
}

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Relaxed ordering is enough: counters are sums, and every
    /// handle that writes is folded before anything reads.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value. Stored as `f64` bits in an
/// atomic so the handle stays `Send + Sync` without a lock.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A sample collector summarised at snapshot time via
/// [`ssync_dsp::stats`] (count / mean / min / p50 / p95 / max).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<Vec<f64>>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        self.0.lock().expect("histogram poisoned").push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.0.lock().expect("histogram poisoned").len()
    }

    /// A copy of the samples in recording order.
    pub fn values(&self) -> Vec<f64> {
        self.0.lock().expect("histogram poisoned").clone()
    }

    fn extend(&self, more: &[f64]) {
        self.0
            .lock()
            .expect("histogram poisoned")
            .extend_from_slice(more);
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of `(name, scope)`-keyed metrics with a canonical-order
/// snapshot. See the module docs for the merge/determinism rules.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    metrics: BTreeMap<(String, Scope), Metric>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Returns the counter for `(name, scope)`, registering it at zero on
    /// first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str, scope: Scope) -> Counter {
        match self
            .metrics
            .entry((name.to_string(), scope))
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?}/{scope:?} already registered with another kind"),
        }
    }

    /// Returns the gauge for `(name, scope)`, registering it at zero on
    /// first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str, scope: Scope) -> Gauge {
        match self
            .metrics
            .entry((name.to_string(), scope))
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?}/{scope:?} already registered with another kind"),
        }
    }

    /// Returns the histogram for `(name, scope)`, registering it empty on
    /// first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str, scope: Scope) -> Histogram {
        match self
            .metrics
            .entry((name.to_string(), scope))
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?}/{scope:?} already registered with another kind"),
        }
    }

    /// Reads a counter without registering it: `None` if the key is
    /// absent or holds another kind.
    pub fn counter_value(&self, name: &str, scope: Scope) -> Option<u64> {
        match self.metrics.get(&(name.to_string(), scope)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Folds `other` into `self`: counters sum, gauges take `other`'s
    /// value (last write wins — call in trial-index order), histograms
    /// append `other`'s samples.
    ///
    /// # Panics
    /// Panics if a shared key has different metric kinds on each side.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (key, theirs) in &other.metrics {
            match self.metrics.get(key) {
                None => {
                    self.metrics.insert(key.clone(), theirs.clone());
                }
                Some(ours) => match (ours, theirs) {
                    (Metric::Counter(a), Metric::Counter(b)) => a.add(b.get()),
                    (Metric::Gauge(a), Metric::Gauge(b)) => a.set(b.get()),
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.extend(&b.values()),
                    _ => panic!("metric {key:?} merged across different kinds"),
                },
            }
        }
    }

    /// Serialises every metric as one table through the shared
    /// [`ssync_exp::record`] IR, in canonical `(name, scope)` order.
    /// Counters render their count; gauges their value; histograms a
    /// six-number summary. Missing cells are `"NA"`, matching the golden
    /// TSV convention.
    pub fn snapshot(&self) -> Output {
        let mut out = Output::new();
        out.columns(&[
            "metric", "scope", "kind", "count", "value", "mean", "min", "p50", "p95", "max",
        ]);
        let na = || Value::s("NA");
        for ((name, scope), metric) in &self.metrics {
            let mut row = vec![Value::s(name.clone()), Value::s(scope.label())];
            match metric {
                Metric::Counter(c) => {
                    row.push(Value::s("counter"));
                    row.push(Value::Int(c.get() as i64));
                    row.extend([na(), na(), na(), na(), na(), na()]);
                }
                Metric::Gauge(g) => {
                    row.push(Value::s("gauge"));
                    row.push(na());
                    row.push(Value::F(g.get(), 6));
                    row.extend([na(), na(), na(), na(), na()]);
                }
                Metric::Histogram(h) => {
                    let xs = h.values();
                    row.push(Value::s("histogram"));
                    row.push(Value::Int(xs.len() as i64));
                    row.push(na());
                    if xs.is_empty() {
                        row.extend([na(), na(), na(), na(), na()]);
                    } else {
                        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        row.push(Value::F(stats::mean(&xs), 6));
                        row.push(Value::F(min, 6));
                        row.push(Value::F(stats::percentile(&xs, 50.0), 6));
                        row.push(Value::F(stats::percentile(&xs, 95.0), 6));
                        row.push(Value::F(max, 6));
                    }
                }
            }
            out.row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_exp::sink::render_tsv;

    #[test]
    fn counter_handles_share_one_cell() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("frames", Scope::Node(1));
        let b = reg.counter("frames", Scope::Node(1));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn scopes_are_distinct_keys() {
        let mut reg = MetricRegistry::new();
        reg.counter("frames", Scope::Global).inc();
        reg.counter("frames", Scope::Node(0)).add(5);
        reg.counter("frames", Scope::Link(0, 1)).add(7);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.counter("frames", Scope::Node(0)).get(), 5);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_conflicts_panic() {
        let mut reg = MetricRegistry::new();
        reg.counter("x", Scope::Global);
        reg.gauge("x", Scope::Global);
    }

    #[test]
    fn merge_sums_counters_and_concats_histograms() {
        let mut a = MetricRegistry::new();
        a.counter("frames", Scope::Global).add(2);
        a.histogram("snr", Scope::Node(0)).record(10.0);
        a.gauge("progress", Scope::Global).set(0.25);

        let mut b = MetricRegistry::new();
        b.counter("frames", Scope::Global).add(3);
        b.counter("drops", Scope::Global).inc();
        b.histogram("snr", Scope::Node(0)).record(20.0);
        b.gauge("progress", Scope::Global).set(0.75);

        a.merge(&b);
        assert_eq!(a.counter("frames", Scope::Global).get(), 5);
        assert_eq!(a.counter("drops", Scope::Global).get(), 1);
        assert_eq!(
            a.histogram("snr", Scope::Node(0)).values(),
            vec![10.0, 20.0]
        );
        assert_eq!(a.gauge("progress", Scope::Global).get(), 0.75);
    }

    #[test]
    fn snapshot_is_canonically_ordered_and_renders() {
        let mut reg = MetricRegistry::new();
        // Register deliberately out of canonical order.
        reg.counter("z_last", Scope::Global).inc();
        reg.counter("a_first", Scope::Link(1, 2)).add(4);
        reg.counter("a_first", Scope::Global).add(9);
        let h = reg.histogram("lat", Scope::Global);
        h.record(1.0);
        h.record(3.0);

        let tsv = render_tsv(&reg.snapshot());
        let lines: Vec<&str> = tsv.lines().collect();
        assert!(lines[0].starts_with("# metric\tscope\tkind"));
        // BTreeMap order: a_first/Global, a_first/Link, lat, z_last.
        assert!(lines[1].starts_with("a_first\t-\tcounter\t9"));
        assert!(lines[2].starts_with("a_first\tl1>2\tcounter\t4"));
        assert!(lines[3].starts_with("lat\t-\thistogram\t2\tNA\t2.000000\t1.000000"));
        assert!(lines[4].starts_with("z_last\t-\tcounter\t1"));
    }

    #[test]
    fn empty_histogram_snapshot_uses_na() {
        let mut reg = MetricRegistry::new();
        reg.histogram("lat", Scope::Global);
        let tsv = render_tsv(&reg.snapshot());
        assert!(tsv.contains("lat\t-\thistogram\t0\tNA\tNA\tNA\tNA\tNA\tNA"));
    }
}
