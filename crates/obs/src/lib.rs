//! # ssync_obs — deterministic observability for the SourceSync stack
//!
//! The repo's contract is byte-identical determinism: every scenario
//! renders the same bytes at any thread count and across simd/scalar
//! builds. This crate extends that contract to *observability*: what the
//! stack records about itself while running is clocked by simulation time
//! and event order — never wall-clock — so traces and metric snapshots
//! are themselves regression surfaces, finer-grained than the golden
//! scenario outputs they ride alongside.
//!
//! Three layers:
//!
//! * [`trace`] — a structured trace recorder. Typed [`trace::TraceEvent`]s
//!   (frame tx/rx, DCF backoff and deferral, ARQ retries, ExOR forwards,
//!   join-stage outcomes, decode diagnostics) stamped with femtosecond sim
//!   time and a deterministic sequence number, buffered per node and
//!   merged in event-queue order. A disabled recorder costs one branch per
//!   emission site — nothing is allocated, formatted, or cloned.
//! * [`metrics`] — a metric registry: counters, gauges, and histograms
//!   (built on [`ssync_dsp::stats`]) with global, per-node, and per-link
//!   scoping, a deterministic snapshot API, and order-preserving merge so
//!   per-trial registries fold together byte-identically at any thread
//!   count.
//! * exporters — [`snapshot`] serialises any [`snapshot::ObsSnapshot`]
//!   through the same [`ssync_exp::sink`] machinery the scenario outputs
//!   use (TSV and JSON), and [`chrome`] renders a whole
//!   [`trace::TraceSet`] as Chrome trace-event JSON, so a testbed run
//!   opens in Perfetto as a per-node timeline.
//!
//! The [`observe::Observable`] trait is the bridge to the experiment
//! harness: a scenario that implements it can be run by `ssync-lab` with
//! `--trace <path>` / `--metrics <path>`, producing its normal rendered
//! output *plus* the trace and metric artifacts — with the normal output
//! guaranteed unchanged (tracing reads protocol outcomes; it never
//! consumes RNG or alters control flow).
//!
//! ## Determinism rules
//!
//! 1. Events are stamped with femtosecond sim time (`t_fs`) and a
//!    per-recorder sequence number assigned in emission order. The merge
//!    order is `(t_fs, seq)` — stable, total, and independent of host
//!    threading because each recorder is filled by exactly one engine.
//! 2. Parallel trials each fill their own recorder/registry; the scenario
//!    folds them into the run-level [`observe::Obs`] in trial-index order.
//! 3. Exported floats use fixed-precision rendering (the same
//!    [`ssync_exp::record::Value`] rules as the golden TSVs), and
//!    timestamps are rendered by exact integer arithmetic — no float
//!    formatting ambiguity anywhere in a trace file.

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod observe;
pub mod service;
pub mod snapshot;
pub mod trace;

pub use chrome::chrome_trace_json;
// Re-exported so `ObsSnapshot` implementors and consumers can name the
// field-value type and render snapshots without a direct `ssync_exp`
// dependency.
pub use ssync_exp::record::Value;
pub use ssync_exp::sink::{render_json, render_tsv};

pub use event::{FrameClass, JoinFailureClass, JoinResult, RxDiagSummary, TraceEventKind};
pub use metrics::{Counter, Gauge, Histogram, MetricRegistry, Scope};
pub use observe::{run_observed_rendered, Obs, Observable};
pub use service::ServiceObs;
pub use snapshot::{snapshot_output, ObsSnapshot};
pub use trace::{TraceEvent, TraceRecorder, TraceSet};
