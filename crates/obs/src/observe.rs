//! The bridge between observability and the experiment harness.
//!
//! [`Obs`] is the run-level collection point: scenarios hand each trial a
//! fresh per-trial [`TraceRecorder`] / [`MetricRegistry`] (safe to fill
//! inside `par_map` workers) and fold the results back in trial-index
//! order. [`Observable`] marks scenarios that can run with an `Obs`
//! attached; [`run_observed_rendered`] is the `ssync-lab --trace /
//! --metrics` entry point, mirroring [`ssync_exp::scenario::run_rendered`].
//!
//! The central invariant: running a scenario observed produces exactly
//! the bytes `run_rendered` produces, plus artifacts. Observation reads
//! protocol outcomes; it never consumes RNG, never branches control
//! flow, and a disabled `Obs` hands out disabled recorders whose `emit`
//! is a single branch.

use ssync_exp::config::{Format, RunConfig};
use ssync_exp::record::Output;
use ssync_exp::scenario::{Ctx, Scenario};

use crate::metrics::MetricRegistry;
use crate::trace::{TraceRecorder, TraceSet};

/// Run-level observability state: a labelled set of per-trial traces and
/// a folded metric registry.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    enabled: bool,
    traces: TraceSet,
    metrics: MetricRegistry,
}

impl Obs {
    /// An inert `Obs`: recorders it hands out drop everything, tracks and
    /// metric merges are discarded. This is what `Scenario::run` passes
    /// so the unobserved path stays allocation- and work-free.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// A collecting `Obs`.
    pub fn enabled() -> Self {
        Obs {
            enabled: true,
            ..Obs::default()
        }
    }

    /// Whether artifacts are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A fresh per-trial recorder matching this `Obs`'s enablement. Hand
    /// one to each trial worker; return it with the trial's outcome.
    pub fn trial_recorder(&self) -> TraceRecorder {
        if self.enabled {
            TraceRecorder::enabled()
        } else {
            TraceRecorder::disabled()
        }
    }

    /// A fresh per-trial metric registry. (Registries are always
    /// functional — handles are one relaxed atomic op — but a disabled
    /// `Obs` discards them at merge time.)
    pub fn trial_registry(&self) -> MetricRegistry {
        MetricRegistry::new()
    }

    /// Adopts one trial's filled recorder as a named track. Call in
    /// trial-index order. No-op when disabled.
    pub fn add_track(&mut self, label: impl Into<String>, recorder: TraceRecorder) {
        if self.enabled {
            self.traces.push(label, recorder);
        }
    }

    /// Folds one trial's registry into the run-level registry. Call in
    /// trial-index order. No-op when disabled.
    pub fn merge_metrics(&mut self, registry: &MetricRegistry) {
        if self.enabled {
            self.metrics.merge(registry);
        }
    }

    /// The collected trace tracks.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The folded run-level metrics.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Renders the collected traces as Chrome trace-event JSON.
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome::chrome_trace_json(&self.traces)
    }

    /// Renders the folded metrics through the shared sink IR.
    pub fn metrics_snapshot(&self) -> Output {
        self.metrics.snapshot()
    }
}

/// A scenario that can run with observability attached.
///
/// Implementations share one body between both paths — idiomatically
/// `Scenario::run` calls `run_observed` with [`Obs::disabled`] (or both
/// call a private `run_with_obs`) — so the observed and unobserved
/// outputs cannot drift apart.
pub trait Observable: Scenario {
    /// Runs the experiment, appending records to `out` and artifacts to
    /// `obs`. With a disabled `obs` this must produce byte-identical
    /// records to [`Scenario::run`].
    fn run_observed(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs);
}

/// Runs an observable scenario under `cfg` with collection enabled.
/// Returns the rendered normal output (same bytes as
/// [`ssync_exp::scenario::run_rendered`]) plus the filled [`Obs`].
pub fn run_observed_rendered(scenario: &dyn Observable, cfg: &RunConfig) -> (String, Obs) {
    let ctx = Ctx::new(cfg.clone());
    let mut out = Output::new();
    let mut obs = Obs::enabled();
    scenario.run_observed(&ctx, &mut out, &mut obs);
    let rendered = match cfg.format {
        Format::Tsv => ssync_exp::sink::render_tsv(&out),
        Format::Json => ssync_exp::sink::render_json(scenario.name(), &out),
    };
    (rendered, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use crate::metrics::Scope;
    use ssync_exp::record::Value;
    use ssync_exp::scenario::run_rendered;

    /// A toy observable scenario exercising the whole per-trial fold.
    struct Toy;

    impl Toy {
        fn run_with_obs(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
            let results = ctx.par_map(3, |i| {
                let mut rec = obs.trial_recorder();
                let mut reg = obs.trial_registry();
                reg.counter("trials", Scope::Global).inc();
                rec.emit(
                    (i as u64 + 1) * 100,
                    i as u32,
                    TraceEventKind::PacketAbandoned { seq: i as u16 },
                );
                (i * 2, rec, reg)
            });
            out.columns(&["i", "double"]);
            for (i, (d, rec, reg)) in results.into_iter().enumerate() {
                obs.add_track(format!("trial{i}"), rec);
                obs.merge_metrics(&reg);
                out.row(vec![Value::Int(i as i64), Value::Int(d as i64)]);
            }
        }
    }

    impl Scenario for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn title(&self) -> &'static str {
            "toy observable"
        }
        fn paper_ref(&self) -> &'static str {
            ""
        }
        fn run(&self, ctx: &Ctx, out: &mut Output) {
            self.run_with_obs(ctx, out, &mut Obs::disabled());
        }
    }

    impl Observable for Toy {
        fn run_observed(&self, ctx: &Ctx, out: &mut Output, obs: &mut Obs) {
            self.run_with_obs(ctx, out, obs);
        }
    }

    #[test]
    fn observed_output_matches_unobserved() {
        let cfg = RunConfig::default();
        let (rendered, obs) = run_observed_rendered(&Toy, &cfg);
        assert_eq!(rendered, run_rendered(&Toy, &cfg));
        assert_eq!(obs.traces().tracks().len(), 3);
        assert_eq!(
            obs.metrics().counter_value("trials", Scope::Global),
            Some(3)
        );
    }

    #[test]
    fn observed_artifacts_are_thread_count_invariant() {
        let run = |threads| {
            run_observed_rendered(
                &Toy,
                &RunConfig {
                    threads,
                    ..Default::default()
                },
            )
        };
        let (out1, obs1) = run(1);
        let (out8, obs8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(obs1.chrome_trace_json(), obs8.chrome_trace_json());
        assert_eq!(
            ssync_exp::sink::render_tsv(&obs1.metrics_snapshot()),
            ssync_exp::sink::render_tsv(&obs8.metrics_snapshot())
        );
    }

    #[test]
    fn disabled_obs_collects_nothing() {
        let ctx = Ctx::new(RunConfig::default());
        let mut out = Output::new();
        let mut obs = Obs::disabled();
        Toy.run_observed(&ctx, &mut out, &mut obs);
        assert!(obs.traces().is_empty());
        assert!(obs.metrics().is_empty());
        assert!(!obs.is_enabled());
    }
}
