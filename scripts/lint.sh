#!/usr/bin/env bash
# The determinism-lint gate — the single invocation CI and local
# development share, so the two can never drift apart.
#
# Runs `ssync_lint --check` over the whole workspace: the six determinism
# rules (nondet-iteration, wall-clock, fma-contraction, silent-fallback,
# undocumented-unsafe, unjustified-allow) against every .rs file, with
# waivers taken from lint.toml (every entry needs a written reason; stale
# entries fail). See the "Determinism contract" section of DESIGN.md.
#
# Usage: scripts/lint.sh [extra ssync_lint args]
#        scripts/lint.sh --list-rules
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--list-rules" ]]; then
    exec cargo run --quiet -p ssync_lint -- --list-rules
fi
exec cargo run --quiet -p ssync_lint -- --check "$@"
