#!/usr/bin/env bash
# Test-count regression gate (stable toolchain only — no nightly needed).
#
# Counts every unit and integration test in the workspace via the stable
# `cargo test -- --list` protocol and compares the total against the
# committed floor in MIN_TEST_COUNT. A PR that (accidentally or silently)
# deletes test suites fails this step; a PR that adds tests should raise
# the floor to the new total so the ratchet only ever moves up.
#
# Usage: scripts/check_test_count.sh            (compare against the floor)
#        scripts/check_test_count.sh --print    (just print the current total)
#
# Doc tests are not included in the count (they are built and run by the
# separate docs CI job); the floor tracks `cargo test -q`'s suites.
set -euo pipefail
cd "$(dirname "$0")/.."

floor_file=MIN_TEST_COUNT
count=$(cargo test --workspace --quiet -- --list 2>/dev/null | grep -c ': test$' || true)

if [[ "${1:-}" == "--print" ]]; then
    echo "$count"
    exit 0
fi

floor=$(tr -d '[:space:]' < "$floor_file")
echo "test count: $count (committed floor: $floor)"

if (( count < floor )); then
    echo "ERROR: the workspace lost tests ($count < $floor)." >&2
    echo "If the removal is intentional, lower $floor_file in the same PR" >&2
    echo "and justify it in the PR description." >&2
    exit 1
fi
if (( count > floor )); then
    echo "note: test count grew — consider raising $floor_file to $count."
fi
