//! Differential tests for the zero-allocation modem workspaces: every
//! workspace-ified function is driven through BOTH the in-place path and
//! the legacy allocating path on identical seeded inputs, asserting
//! byte-identical output.
//!
//! The workspaces are deliberately *reused* across iterations inside each
//! test — matching a fresh workspace is trivial (the allocating wrappers
//! delegate), so the interesting property is that no state leaks from one
//! frame into the next.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sourcesync::core::{
    decode_joint_data, decode_joint_data_with, joint_data_waveform, joint_data_waveform_into,
    CombineWorkspace, CosenderPlan, DataSectionSpec, JointConfig, JointDataWindow, JointSession,
    RoleChannels, SessionWorkspace,
};
use sourcesync::dsp::rng::ComplexGaussian;
use sourcesync::dsp::{Complex64, Fft};
use sourcesync::phy::chanest::ChannelEstimate;
use sourcesync::phy::{
    frame, ofdm, OfdmParams, RateId, Receiver, RxWorkspace, Transmitter, TxWorkspace,
};
use sourcesync::sim::{ChannelModels, Network, NodeId};
use sourcesync::stbc::Codeword;

fn bits_of(v: &[Complex64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

#[test]
fn ofdm_modulate_and_demodulate_match_legacy() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut tx_ws = TxWorkspace::new(&OfdmParams::dot11a());
    let mut wave = Vec::new();
    let mut grid_buf = Vec::new();
    let mut data_buf = Vec::new();
    let mut pilot_buf = Vec::new();
    // One reused workspace across both numerologies: the re-keying path is
    // part of what is under test.
    for params in [OfdmParams::dot11a(), OfdmParams::wiglan()] {
        let fft = Fft::new(params.fft_size);
        for sym_idx in 0..4 {
            let data: Vec<Complex64> = (0..params.n_data())
                .map(|_| ComplexGaussian::unit().sample(&mut rng))
                .collect();
            for pilots in [true, false] {
                let legacy = ofdm::modulate_symbol_with_pilots(
                    &params,
                    &fft,
                    &data,
                    sym_idx,
                    params.cp_len,
                    pilots,
                );
                wave.clear();
                ofdm::modulate_symbol_append(
                    &params,
                    &fft,
                    &data,
                    sym_idx,
                    params.cp_len,
                    pilots,
                    &mut tx_ws,
                    &mut wave,
                );
                assert_eq!(
                    bits_of(&wave),
                    bits_of(&legacy),
                    "{} sym {sym_idx}",
                    params.name
                );

                let legacy_grid = ofdm::demodulate_window(&params, &fft, &legacy, params.cp_len);
                ofdm::demodulate_window_into(&params, &fft, &wave, params.cp_len, &mut grid_buf);
                assert_eq!(bits_of(&grid_buf), bits_of(&legacy_grid));

                ofdm::extract_data_into(&params, &grid_buf, &mut data_buf);
                assert_eq!(
                    bits_of(&data_buf),
                    bits_of(&ofdm::extract_data(&params, &legacy_grid))
                );
                ofdm::extract_pilots_into(&params, &grid_buf, &mut pilot_buf);
                assert_eq!(
                    bits_of(&pilot_buf),
                    bits_of(&ofdm::extract_pilots(&params, &legacy_grid))
                );
            }
        }
    }
}

#[test]
fn transmitter_workspace_path_matches_legacy() {
    let mut rng = StdRng::seed_from_u64(2);
    for params in [OfdmParams::dot11a(), OfdmParams::wiglan()] {
        let tx = Transmitter::new(params.clone());
        let mut ws = TxWorkspace::new(&params);
        let mut wave = Vec::new();
        for (i, rate) in [RateId::R6, RateId::R24, RateId::R54]
            .into_iter()
            .enumerate()
        {
            let payload: Vec<u8> = (0..200 + 37 * i).map(|_| rng.gen()).collect();
            let legacy = tx.frame_waveform(&payload, rate, i as u8 & 0b111);
            tx.frame_waveform_into(&payload, rate, i as u8 & 0b111, &mut ws, &mut wave);
            assert_eq!(bits_of(&wave), bits_of(&legacy), "{} {rate:?}", params.name);
        }
    }
}

/// Noise floor, then the frame, then padding — same fixture as the phy
/// receiver unit tests.
fn on_air(tx_wave: &[Complex64], lead_pad: usize, snr_db: f64, seed: u64) -> Vec<Complex64> {
    let noise_p = sourcesync::dsp::stats::linear_from_db(-snr_db);
    let mut rng = StdRng::seed_from_u64(seed);
    let total = lead_pad + tx_wave.len() + 500;
    let mut buf = ComplexGaussian::with_power(noise_p).sample_vec(&mut rng, total);
    for (i, s) in tx_wave.iter().enumerate() {
        buf[lead_pad + i] += *s;
    }
    buf
}

#[test]
fn rx_chain_workspace_path_matches_legacy() {
    let params = OfdmParams::dot11a();
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let mut ws = RxWorkspace::new(&params);
    // A mix of clean decodes, CRC failures (low SNR at a high rate), and
    // no-detection buffers, all through ONE workspace.
    let cases: &[(RateId, f64)] = &[
        (RateId::R12, 30.0),
        (RateId::R54, 5.0),
        (RateId::R6, 25.0),
        (RateId::R54, 35.0),
        (RateId::R24, 9.0),
    ];
    for (i, &(rate, snr_db)) in cases.iter().enumerate() {
        let payload: Vec<u8> = (0..300).map(|_| rng.gen()).collect();
        let wave = tx.frame_waveform(&payload, rate, 0);
        let buf = on_air(&wave, 150 + 30 * i, snr_db, 50 + i as u64);
        let legacy = rx.receive(&buf);
        let pooled = rx.receive_with(&buf, &mut ws);
        match (legacy, pooled) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.payload, b.payload, "case {i}");
                assert_eq!(a.signal, b.signal);
                assert_eq!(a.diag, b.diag, "case {i}: diagnostics diverged");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "case {i}: errors diverged"),
            (a, b) => panic!("case {i}: {a:?} vs {b:?}"),
        }
    }
    // Empty buffer through the warmed workspace.
    assert_eq!(
        format!("{:?}", rx.receive(&[])),
        format!("{:?}", rx.receive_with(&[], &mut ws))
    );
}

fn const_roles(
    params: &sourcesync::phy::Params,
    h_a: Complex64,
    h_b: Complex64,
    n0: f64,
) -> RoleChannels {
    let occupied = params.occupied_carriers();
    let mk = |v: Complex64| ChannelEstimate {
        carriers: occupied.clone(),
        values: vec![v; occupied.len()],
        noise_power: n0,
    };
    let lead = mk(h_a);
    let co = mk(h_b);
    RoleChannels::from_estimates(params, &[Some(&lead), Some(&co)])
}

#[test]
fn combiner_workspace_paths_match_legacy() {
    let params = OfdmParams::dot11a();
    let fft = Fft::new(params.fft_size);
    let mut rng = StdRng::seed_from_u64(4);
    let mut ws = CombineWorkspace::new(&params);
    let h_a = Complex64::from_polar(1.0, 0.7);
    let h_b = Complex64::from_polar(0.8, -2.1);
    let mut wave = Vec::new();
    // Sweep the coding knobs (including the odd-symbol STBC-pad case via
    // different psdu lengths) through one reused workspace.
    for (i, (smart, sharing, len)) in [
        (true, true, 200usize),
        (true, false, 90),
        (false, true, 121),
        (true, true, 33),
    ]
    .into_iter()
    .enumerate()
    {
        let psdu: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let spec = DataSectionSpec {
            rate: RateId::R12,
            cp_len: params.cp_len,
            smart_combiner: smart,
            pilot_sharing: sharing,
        };
        for role in [Codeword::A, Codeword::B] {
            let legacy = joint_data_waveform(&params, &fft, &psdu, role, &spec);
            joint_data_waveform_into(&params, &fft, &psdu, role, &spec, &mut ws, &mut wave);
            assert_eq!(bits_of(&wave), bits_of(&legacy), "case {i} role {role:?}");
        }

        // Joint on-air sum + decode, legacy vs workspace.
        let wa = joint_data_waveform(&params, &fft, &psdu, Codeword::A, &spec);
        let wb = joint_data_waveform(&params, &fft, &psdu, Codeword::B, &spec);
        let noise = ComplexGaussian::with_power(1e-4);
        let buf: Vec<Complex64> = wa
            .iter()
            .zip(&wb)
            .map(|(a, b)| h_a * *a + h_b * *b + noise.sample(&mut rng))
            .collect();
        let n_syms = frame::n_data_symbols(&params, psdu.len(), RateId::R12);
        let roles = const_roles(&params, h_a, h_b, 1e-4);
        let window = JointDataWindow {
            data_start: 0,
            n_syms,
            psdu_len: psdu.len(),
            backoff: 0,
        };
        let (legacy_psdu, legacy_stats) =
            decode_joint_data(&params, &fft, &buf, &window, &spec, &roles).expect("length");
        let (ws_psdu, ws_stats) =
            decode_joint_data_with(&params, &fft, &buf, &window, &spec, &roles, &mut ws)
                .expect("length");
        assert_eq!(ws_psdu, legacy_psdu, "case {i}: decoded PSDU diverged");
        assert_eq!(
            ws_stats.mean_effective_gain.to_bits(),
            legacy_stats.mean_effective_gain.to_bits()
        );
        assert_eq!(
            ws_stats.evm_snr_db.to_bits(),
            legacy_stats.evm_snr_db.to_bits()
        );
    }
}

fn test_network(seed: u64) -> Network {
    use sourcesync::channel::Position;
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(12.0, 0.0),
        Position::new(6.0, 8.0),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    )
}

/// A delay database filled from the simulator's exact delays (keeps the
/// differential fixtures deterministic without probe traffic).
fn oracle_db(net: &Network, nodes: &[NodeId]) -> sourcesync::core::DelayDatabase {
    let mut db = sourcesync::core::DelayDatabase::new();
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            db.set_delay(nodes[i], nodes[j], net.true_delay_s(nodes[i], nodes[j]));
        }
    }
    db
}

#[test]
fn joint_session_workspace_run_matches_legacy_run() {
    let payload: Vec<u8> = (0..160u16).map(|i| (i * 11 % 256) as u8).collect();
    let session = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 60e-9,
        })
        .receiver(NodeId(2))
        .payload(payload.clone())
        .config(JointConfig::default());

    let mut ws = SessionWorkspace::new(OfdmParams::dot11a());
    // Two sessions back-to-back through ONE workspace vs fresh machinery:
    // identical seeds must give bit-identical outcomes both times.
    for round in 0..2u64 {
        let mut net_a = test_network(70 + round);
        let db_a = oracle_db(&net_a, &[NodeId(0), NodeId(1), NodeId(2)]);
        let mut rng_a = StdRng::seed_from_u64(80 + round);
        let pooled = session.run_with(&mut net_a, &mut rng_a, &db_a, &mut ws);

        let mut net_b = test_network(70 + round);
        let db_b = oracle_db(&net_b, &[NodeId(0), NodeId(1), NodeId(2)]);
        let mut rng_b = StdRng::seed_from_u64(80 + round);
        let legacy = session.run(&mut net_b, &mut rng_b, &db_b);

        assert_eq!(
            pooled.reports[0].payload, legacy.reports[0].payload,
            "round {round}"
        );
        assert_eq!(
            pooled.reports[0].measured_misalign_s,
            legacy.reports[0].measured_misalign_s
        );
        assert_eq!(
            pooled.reports[0].effective_snr_db,
            legacy.reports[0].effective_snr_db
        );
        assert_eq!(pooled.co_tx_times, legacy.co_tx_times);
        assert_eq!(pooled.true_misalign_s.len(), legacy.true_misalign_s.len());
        for (a, b) in pooled.true_misalign_s.iter().zip(&legacy.true_misalign_s) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

#[test]
fn joint_session_stages_with_shared_workspace_deliver() {
    // Drive the three stages separately, every stage through the SAME
    // reused workspace (each stage "owns" it in turn), and check the
    // outcome against the all-in-one legacy driver.
    let payload = vec![0x9Au8; 140];
    let session = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 60e-9,
        })
        .receiver(NodeId(2))
        .payload(payload.clone())
        .config(JointConfig::default());

    let mut net = test_network(90);
    let db = oracle_db(&net, &[NodeId(0), NodeId(1), NodeId(2)]);
    let mut rng = StdRng::seed_from_u64(91);
    let mut ws = SessionWorkspace::new(OfdmParams::dot11a());
    let frame_sched = session.lead_tx().transmit_with(&mut net, &mut ws);
    let join = session
        .cosender_join(0, &frame_sched)
        .join_with(&mut net, &mut rng, &db, &mut ws);
    assert!(join.is_ok(), "join failed: {join:?}");
    let report = session
        .receiver_decode(NodeId(2), &frame_sched)
        .decode_with(&mut net, &mut rng, &mut ws);
    assert!(report.header_ok);
    assert_eq!(report.payload.as_deref(), Some(&payload[..]));

    // Same seeds through the legacy staged entry points.
    let mut net_b = test_network(90);
    let mut rng_b = StdRng::seed_from_u64(91);
    let frame_b = session.lead_tx().transmit(&mut net_b);
    let join_b = session
        .cosender_join(0, &frame_b)
        .join(&mut net_b, &mut rng_b, &db);
    let report_b = session
        .receiver_decode(NodeId(2), &frame_b)
        .decode(&mut net_b, &mut rng_b);
    assert_eq!(format!("{join:?}"), format!("{join_b:?}"));
    assert_eq!(report.payload, report_b.payload);
    assert_eq!(report.measured_misalign_s, report_b.measured_misalign_s);
}
