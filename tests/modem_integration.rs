//! Modem integration tests: the full TX → channel → RX chain over the
//! fading substrate, at the level a link-layer consumer cares about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sourcesync::channel::{add_awgn, Link, Multipath, MultipathProfile, Oscillator};
use sourcesync::dsp::Complex64;
use sourcesync::phy::{OfdmParams, RateId, Receiver, RxError, Transmitter};

/// TX → link → AWGN → RX, returning whether the payload survived.
fn one_packet(
    seed: u64,
    rate: RateId,
    snr_db: f64,
    multipath: bool,
    cfo_hz: f64,
    delay_frac: f64,
) -> bool {
    let params = OfdmParams::dot11a();
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let payload: Vec<u8> = (0..500).map(|_| rng.gen()).collect();
    let wave = tx.frame_waveform(&payload, rate, 0);
    let mp = if multipath {
        MultipathProfile::testbed(params.sample_rate_hz).draw(&mut rng)
    } else {
        Multipath::identity()
    };
    let link = Link {
        amplitude_gain: sourcesync::dsp::stats::linear_from_db(snr_db).sqrt() / mp.power().sqrt(),
        multipath: mp,
        delay_fs: (delay_frac * params.sample_period_fs() as f64) as u64,
        cfo_hz,
    };
    let (mut rxwave, start) = link.propagate(
        &wave,
        300 * params.sample_period_fs(),
        params.sample_period_fs(),
    );
    let mut buf = vec![Complex64::ZERO; start as usize + rxwave.len() + 400];
    buf[start as usize..start as usize + rxwave.len()].copy_from_slice(&rxwave);
    rxwave.clear();
    add_awgn(&mut rng, &mut buf, 1.0);
    match rx.receive(&buf) {
        Ok(res) => res.payload == payload,
        Err(_) => false,
    }
}

#[test]
fn high_snr_survives_everything_at_once() {
    // Multipath + CFO + fractional delay + 30 dB noise, all rates.
    for (i, rate) in [RateId::R6, RateId::R12, RateId::R24]
        .into_iter()
        .enumerate()
    {
        let mut ok = 0;
        for seed in 0..6u64 {
            if one_packet(1000 + seed + i as u64 * 100, rate, 30.0, true, 40e3, 0.37) {
                ok += 1;
            }
        }
        assert!(ok >= 5, "{rate:?}: only {ok}/6 at 30 dB over fading");
    }
}

#[test]
fn per_is_monotone_in_snr() {
    let rate = RateId::R24;
    let mut success_by_snr = Vec::new();
    for snr in [8.0, 14.0, 20.0, 28.0] {
        let mut ok = 0;
        for seed in 0..12u64 {
            if one_packet(2000 + seed + (snr as u64) * 37, rate, snr, false, 0.0, 0.0) {
                ok += 1;
            }
        }
        success_by_snr.push(ok);
    }
    assert!(
        success_by_snr.windows(2).all(|w| w[0] <= w[1]),
        "success counts not monotone: {success_by_snr:?}"
    );
    assert_eq!(*success_by_snr.last().unwrap(), 12, "28 dB should be clean");
    assert_eq!(success_by_snr[0], 0, "8 dB should fail for 16-QAM 1/2");
}

#[test]
fn oscillator_offsets_within_spec_are_handled() {
    // ±20 ppm at 5.3 GHz = ±106 kHz: the worst legal pairing must decode.
    let worst = Oscillator::with_ppm(20.0).cfo_to_hz(&Oscillator::with_ppm(-20.0));
    assert!(worst > 200e3, "worst-case CFO {worst}");
    // The detector's range covers ±2 subcarrier spacings (±625 kHz at
    // 20 Msps), so even the doubled offset decodes.
    let mut ok = 0;
    for seed in 0..6u64 {
        if one_packet(3000 + seed, RateId::R12, 28.0, false, worst, 0.0) {
            ok += 1;
        }
    }
    assert!(ok >= 5, "only {ok}/6 with worst-case CFO");
}

#[test]
fn truncation_and_garbage_do_not_panic() {
    let params = OfdmParams::dot11a();
    let rx = Receiver::new(params.clone());
    let mut rng = StdRng::seed_from_u64(9);
    // Garbage of various lengths.
    for len in [0usize, 1, 63, 64, 1000, 5000] {
        let buf: Vec<Complex64> = (0..len)
            .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        match rx.receive(&buf) {
            Ok(_)
            | Err(RxError::NoPacket)
            | Err(RxError::Truncated(_))
            | Err(RxError::BadSignal(_))
            | Err(RxError::BadCrc(_)) => {}
        }
    }
    // A real frame cut at every quarter.
    let tx = Transmitter::new(params);
    let wave = tx.frame_waveform(&[7u8; 200], RateId::R12, 0);
    let mut buf = vec![Complex64::ZERO; 200];
    buf.extend(wave);
    for cut in [buf.len() / 4, buf.len() / 2, 3 * buf.len() / 4] {
        let _ = rx.receive(&buf[..cut]);
    }
}
