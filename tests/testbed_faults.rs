//! Fault-injection integration suite: every `FaultInjector` fault class,
//! wired through the event-driven testbed's protocol seams, must surface
//! as the *right typed protocol outcome* — a typed `JoinFailure`, an ARQ
//! retry, or an ExOR lead-only fallback — never as a silent behaviour
//! change.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::channel::Position;
use sourcesync::phy::{OfdmParams, RateId};
use sourcesync::sim::{ChannelModels, FaultInjector, Network, NodeId};
use sourcesync::testbed::{
    run_transfer, DelaySource, FaultPlan, RoutingMode, TestbedConfig, TestbedOutcome,
};

/// A small diamond — src 0, relays 1–2, dst 3 — with a clean first hop
/// and a decodable final hop, so protocol outcomes are driven by the
/// *injected* faults rather than by channel noise.
fn diamond(seed: u64, relay_dst_db: f64) -> Network {
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(12.0, 5.0),
        Position::new(12.0, -5.0),
        Position::new(24.0, 0.0),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    for r in [1usize, 2] {
        net.pin_snr_db(NodeId(0), NodeId(r), 25.0);
        net.pin_snr_db(NodeId(r), NodeId(0), 25.0);
        net.pin_snr_db(NodeId(r), NodeId(3), relay_dst_db);
        net.pin_snr_db(NodeId(3), NodeId(r), relay_dst_db);
    }
    net.pin_snr_db(NodeId(1), NodeId(2), 20.0);
    net.pin_snr_db(NodeId(2), NodeId(1), 20.0);
    net.pin_snr_db(NodeId(0), NodeId(3), -15.0);
    net.pin_snr_db(NodeId(3), NodeId(0), -15.0);
    net
}

fn run(
    seed: u64,
    relay_dst_db: f64,
    mode: RoutingMode,
    faults: FaultPlan,
    delays: DelaySource,
) -> TestbedOutcome {
    let mut net = diamond(seed, relay_dst_db);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA117);
    let cfg = TestbedConfig {
        batch_size: 3,
        payload_len: 64,
        faults,
        delays,
        ..TestbedConfig::new(RateId::R12, mode)
    };
    run_transfer(&mut net, &mut rng, 0, 3, &[1, 2], &cfg).expect("diamond is routable")
}

/// The final hop at which plain first attempts usually fail, so retries
/// escalate to joint frames and joins actually happen.
const LOSSY_DST_DB: f64 = 5.0;

#[test]
fn dropped_headers_map_to_no_detect_and_lead_only_fallback() {
    let faults = FaultPlan {
        header: FaultInjector::new(1.0, 0.0),
        ..FaultPlan::none()
    };
    let o = run(
        1,
        LOSSY_DST_DB,
        RoutingMode::ExorSourceSync,
        faults,
        DelaySource::Oracle,
    );
    assert!(o.joins.attempted > 0, "{o:?}");
    assert_eq!(
        o.joins.joined, 0,
        "no co-sender may survive a dropped header"
    );
    assert_eq!(
        o.joins.no_detect, o.joins.attempted,
        "every dropped header must read as the typed NoDetect: {o:?}"
    );
    assert_eq!(o.faults.headers_dropped, o.joins.attempted);
    // ExOR fallback: joint frames degrade to lead-only transmissions and
    // the batch still completes through ordinary ExOR forwarding.
    assert!(
        o.delivered > 0,
        "lead-only fallback must still deliver: {o:?}"
    );
}

#[test]
fn corrupted_headers_map_to_typed_parse_failures() {
    let faults = FaultPlan {
        header: FaultInjector::new(0.0, 1.0),
        ..FaultPlan::none()
    };
    // Several seeds so the flipped bit lands in different header fields.
    let mut malformed = 0u64;
    let mut wrong_packet = 0u64;
    let mut corrupted = 0u64;
    for seed in 1..=4 {
        let o = run(
            seed,
            LOSSY_DST_DB,
            RoutingMode::ExorSourceSync,
            faults,
            DelaySource::Oracle,
        );
        assert_eq!(o.joins.no_detect, 0, "corruption is not a drop: {o:?}");
        malformed += o.joins.malformed_header;
        wrong_packet += o.joins.wrong_packet;
        corrupted += o.faults.headers_corrupted;
        // Every outcome is typed: attempts = joins + typed failures.
        assert_eq!(
            o.joins.attempted,
            o.joins.joined + o.joins.failures(),
            "{o:?}"
        );
    }
    assert!(corrupted > 0, "injector never fired");
    assert!(
        malformed + wrong_packet > 0,
        "bit flips in length/id fields must surface as MalformedHeader/WrongPacket \
         (malformed {malformed}, wrong_packet {wrong_packet})"
    );
}

#[test]
fn missing_delay_database_maps_to_typed_missing_delay() {
    let o = run(
        2,
        LOSSY_DST_DB,
        RoutingMode::ExorSourceSync,
        FaultPlan::none(),
        DelaySource::Empty,
    );
    assert!(o.joins.attempted > 0, "{o:?}");
    assert_eq!(o.joins.joined, 0);
    assert_eq!(
        o.joins.missing_delay, o.joins.attempted,
        "an empty delay database must fail every join as MissingDelay, \
         not silently join misaligned: {o:?}"
    );
    assert!(o.delivered > 0, "lead-only fallback must still deliver");
}

#[test]
fn lost_acks_map_to_arq_retries_not_lost_packets() {
    let faults = FaultPlan {
        ack: FaultInjector::new(0.7, 0.0),
        ..FaultPlan::none()
    };
    // Clean links: every loss below is the injector's doing.
    let o = run(
        3,
        25.0,
        RoutingMode::SinglePath,
        faults,
        DelaySource::Oracle,
    );
    assert!(o.acks_lost > 0, "{o:?}");
    assert!(o.arq_retries > 0, "lost ACKs must drive ARQ retries: {o:?}");
    assert!(o.faults.acks_dropped > 0);
    assert_eq!(
        o.delivered, 3,
        "data reached the destination; receive-side dedup absorbs the \
         retransmissions: {o:?}"
    );
    assert!(
        o.data_frames > 3,
        "retries must put extra frames on the air: {o:?}"
    );
}

#[test]
fn total_ack_blackout_still_delivers_through_receive_side_state() {
    // Every ACK dies. Senders burn their whole retry budgets, but each
    // hop that decoded the DATA owns the packet and forwards it anyway —
    // receive-side state advances on reception, not on the ACK's fate,
    // so nothing is "abandoned" even though no exchange ever completes.
    let faults = FaultPlan {
        ack: FaultInjector::new(1.0, 0.0),
        ..FaultPlan::none()
    };
    let o = run(
        8,
        25.0,
        RoutingMode::SinglePath,
        faults,
        DelaySource::Oracle,
    );
    assert_eq!(o.delivered, 3, "{o:?}");
    assert_eq!(o.packets_abandoned, 0, "{o:?}");
    assert!(o.acks_lost > 0);
    assert!(o.arq_retries > 0);
}

#[test]
fn corrupted_acks_count_separately_from_drops() {
    let faults = FaultPlan {
        ack: FaultInjector::new(0.0, 0.5),
        ..FaultPlan::none()
    };
    let o = run(
        4,
        25.0,
        RoutingMode::SinglePath,
        faults,
        DelaySource::Oracle,
    );
    assert!(o.faults.acks_corrupted > 0, "{o:?}");
    assert_eq!(o.faults.acks_dropped, 0);
    assert!(o.arq_retries > 0);
    assert_eq!(o.delivered, 3);
}

#[test]
fn dropped_data_maps_to_retries_then_abandonment() {
    let faults = FaultPlan {
        data: FaultInjector::new(1.0, 0.0),
        ..FaultPlan::none()
    };
    let o = run(
        5,
        25.0,
        RoutingMode::SinglePath,
        faults,
        DelaySource::Oracle,
    );
    assert_eq!(o.delivered, 0, "a fully dropped data seam delivers nothing");
    assert!(o.faults.data_dropped > 0);
    assert!(o.arq_retries > 0, "{o:?}");
    assert_eq!(
        o.packets_abandoned, 3,
        "every packet must exhaust its retry budget and be abandoned: {o:?}"
    );
}

#[test]
fn corrupted_data_fails_mac_check_and_is_not_delivered() {
    let faults = FaultPlan {
        data: FaultInjector::new(0.0, 1.0),
        ..FaultPlan::none()
    };
    let o = run(6, 25.0, RoutingMode::Exor, faults, DelaySource::Oracle);
    assert_eq!(o.delivered, 0, "{o:?}");
    assert!(o.faults.data_corrupted > 0);
    assert_eq!(o.faults.data_dropped, 0);
}

#[test]
fn every_fault_class_fires_at_least_once_in_one_run() {
    // All six injector classes live (drop + corrupt on each seam), on the
    // lossy diamond in ExOR+SourceSync mode so joint frames, ACK replies
    // and data receptions all occur.
    let faults = FaultPlan {
        data: FaultInjector::new(0.3, 0.3),
        ack: FaultInjector::new(0.3, 0.3),
        header: FaultInjector::new(0.3, 0.3),
    };
    let mut totals = sourcesync::testbed::FaultCounters::default();
    for seed in 10..16 {
        let o = run(
            seed,
            LOSSY_DST_DB,
            RoutingMode::ExorSourceSync,
            faults,
            DelaySource::Oracle,
        );
        totals.data_dropped += o.faults.data_dropped;
        totals.data_corrupted += o.faults.data_corrupted;
        totals.acks_dropped += o.faults.acks_dropped;
        totals.acks_corrupted += o.faults.acks_corrupted;
        totals.headers_dropped += o.faults.headers_dropped;
        totals.headers_corrupted += o.faults.headers_corrupted;
    }
    assert!(totals.data_dropped > 0, "{totals:?}");
    assert!(totals.data_corrupted > 0, "{totals:?}");
    assert!(totals.acks_dropped > 0, "{totals:?}");
    assert!(totals.acks_corrupted > 0, "{totals:?}");
    assert!(totals.headers_dropped > 0, "{totals:?}");
    assert!(totals.headers_corrupted > 0, "{totals:?}");
}

#[test]
fn fault_free_baseline_is_clean() {
    let o = run(
        7,
        25.0,
        RoutingMode::ExorSourceSync,
        FaultPlan::none(),
        DelaySource::Oracle,
    );
    assert_eq!(o.faults.total(), 0);
    assert_eq!(o.delivered, 3, "{o:?}");
}
