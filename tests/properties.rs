//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use sourcesync::dsp::{Complex64, Fft};
use sourcesync::linprog::MisalignmentProblem;
use sourcesync::phy::modulation::DemapTable;
use sourcesync::phy::params::CodeRate;
use sourcesync::phy::scramble::Scrambler;
use sourcesync::phy::{
    convcode, frame, interleave::Interleaver, viterbi, Modulation, OfdmParams, RateId,
};
use sourcesync::sim::{Duration, Time};
use sourcesync::stbc::{decode_pair, encode_pair, Codeword};

fn arb_complex() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_any_signal(values in proptest::collection::vec(arb_complex(), 64)) {
        let fft = Fft::new(64);
        let back = fft.inverse_to_vec(&fft.forward_to_vec(&values));
        for (a, b) in values.iter().zip(&back) {
            prop_assert!(a.dist(*b) < 1e-9);
        }
    }

    #[test]
    fn fft_linearity(a in proptest::collection::vec(arb_complex(), 64),
                     b in proptest::collection::vec(arb_complex(), 64)) {
        let fft = Fft::new(64);
        let fa = fft.forward_to_vec(&a);
        let fb = fft.forward_to_vec(&b);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fsum = fft.forward_to_vec(&sum);
        for i in 0..64 {
            prop_assert!(fsum[i].dist(fa[i] + fb[i]) < 1e-9);
        }
    }

    #[test]
    fn crc_rejects_any_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        byte_idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let framed = sourcesync::phy::crc::append_crc(&payload);
        let mut bad = framed.clone();
        let idx = byte_idx % bad.len();
        bad[idx] ^= 1 << bit;
        prop_assert_eq!(sourcesync::phy::crc::check_crc(&bad), None);
        prop_assert_eq!(sourcesync::phy::crc::check_crc(&framed), Some(&payload[..]));
    }

    #[test]
    fn interleaver_bijective_roundtrip(
        modulation in prop::sample::select(vec![
            Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64
        ]),
        wiglan in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let params = if wiglan { OfdmParams::wiglan() } else { OfdmParams::dot11a() };
        let il = Interleaver::new(&params, modulation);
        let bits: Vec<u8> = (0..il.block_len())
            .map(|i| ((seed >> (i % 64)) & 1) as u8)
            .collect();
        prop_assert_eq!(il.deinterleave_bits(&il.interleave(&bits)), bits);
    }

    #[test]
    fn alamouti_decodes_any_channel(
        x0 in arb_complex(), x1 in arb_complex(),
        h_a in arb_complex(), h_b in arb_complex(),
    ) {
        prop_assume!(h_a.norm_sqr() + h_b.norm_sqr() > 1e-6);
        let (a0, a1) = encode_pair(Codeword::A, x0, x1);
        let (b0, b1) = encode_pair(Codeword::B, x0, x1);
        let y0 = h_a * a0 + h_b * b0;
        let y1 = h_a * a1 + h_b * b1;
        let d = decode_pair(y0, y1, h_a, h_b);
        prop_assert!(d.x0.dist(x0) < 1e-6, "{:?} vs {:?}", d.x0, x0);
        prop_assert!(d.x1.dist(x1) < 1e-6);
    }

    #[test]
    fn signal_field_roundtrip(
        rate_idx in 0u8..8,
        length in any::<u16>(),
        flags in 0u8..8,
    ) {
        let sig = frame::SignalField {
            rate: RateId::from_index(rate_idx).unwrap(),
            length,
            flags,
        };
        prop_assert_eq!(frame::SignalField::from_bits(&sig.to_bits()), Some(sig));
    }

    #[test]
    fn data_pipeline_roundtrip_clean(
        payload in proptest::collection::vec(any::<u8>(), 0..120),
        rate_idx in 0u8..8,
    ) {
        let params = OfdmParams::dot11a();
        let rate = RateId::from_index(rate_idx).unwrap();
        let m = rate.modulation();
        let syms = frame::encode_data(&params, &payload, rate);
        let llrs: Vec<Vec<f64>> = syms
            .iter()
            .map(|s| {
                s.iter()
                    .flat_map(|p| {
                        sourcesync::phy::modulation::demap_llrs(
                            m,
                            *p,
                            Complex64::ONE,
                            1e-3,
                        )
                    })
                    .collect()
            })
            .collect();
        let decoded = frame::decode_data(&params, &llrs, rate, payload.len());
        prop_assert_eq!(decoded.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn minimax_lp_never_beaten_by_naive(
        lead in proptest::collection::vec(1e-9f64..400e-9, 1..4),
        co_flat in proptest::collection::vec(1e-9f64..400e-9, 1..10),
    ) {
        let n_rx = lead.len();
        let n_co = (co_flat.len() / n_rx).max(1);
        let co: Vec<Vec<f64>> = (0..n_co)
            .map(|i| (0..n_rx).map(|j| co_flat[(i * n_rx + j) % co_flat.len()]).collect())
            .collect();
        let p = MisalignmentProblem { lead_delays: lead.clone(), cosender_delays: co.clone() };
        let sol = p.solve();
        // Naive: align at receiver 0 only.
        let naive: Vec<f64> = (0..n_co).map(|i| lead[0] - co[i][0]).collect();
        prop_assert!(sol.max_misalignment <= p.misalignment_of(&naive) + 1e-9);
        // Zero waits are also never better.
        let zeros = vec![0.0; n_co];
        prop_assert!(sol.max_misalignment <= p.misalignment_of(&zeros) + 1e-9);
    }

    // ---- Workspace-API round trips: the same invariants the legacy-path
    // tests above rely on, driven through the `_into`/workspace entry
    // points with buffers deliberately reused across strategy cases. ----

    #[test]
    fn interleaver_into_roundtrip_and_matches_legacy(
        modulation in prop::sample::select(vec![
            Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64
        ]),
        wiglan in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let params = if wiglan { OfdmParams::wiglan() } else { OfdmParams::dot11a() };
        let il = Interleaver::new(&params, modulation);
        let bits: Vec<u8> = (0..il.block_len())
            .map(|i| ((seed >> (i % 64)) & 1) as u8)
            .collect();
        let mut inter = vec![0xFFu8; 3]; // stale content must be cleared
        let mut back = vec![0xFFu8; 99];
        il.interleave_into(&bits, &mut inter);
        prop_assert_eq!(&inter, &il.interleave(&bits));
        il.deinterleave_bits_into(&inter, &mut back);
        prop_assert_eq!(&back, &bits);
        // LLR append path: appended block equals the legacy per-block vector.
        let llrs: Vec<f64> = inter.iter().map(|b| *b as f64 - 0.5).collect();
        let mut appended = vec![7.0f64; 2]; // pre-existing prefix is kept
        il.deinterleave_llrs_append(&llrs, &mut appended);
        prop_assert_eq!(&appended[..2], &[7.0, 7.0][..]);
        prop_assert_eq!(&appended[2..], &il.deinterleave_llrs(&llrs)[..]);
    }

    #[test]
    fn scramble_is_an_involution_and_seed_sensitive(
        data in proptest::collection::vec(0u8..2, 1..300),
        seed in 1u8..128,
    ) {
        // scramble(scramble(x)) == x for any seed (XOR with the same LFSR
        // stream twice), driven through the in-place workspace-style API.
        let mut bits = data.clone();
        Scrambler::new(seed).scramble_in_place(&mut bits);
        let whitened = bits.clone();
        Scrambler::new(seed).scramble_in_place(&mut bits);
        prop_assert_eq!(&bits, &data);
        // And the builder-style API agrees with the in-place one.
        prop_assert_eq!(Scrambler::new(seed).scramble(&data), whitened);
    }

    #[test]
    fn convcode_into_pipeline_roundtrips_through_viterbi(
        info in proptest::collection::vec(0u8..2, 1..120),
        rate in prop::sample::select(vec![
            CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters
        ]),
    ) {
        // Pad to a puncturing-period multiple (as the frame layer does),
        // append the tail, then run encode→puncture→depuncture→viterbi
        // entirely through the reused-buffer APIs.
        let (num, _) = rate.ratio();
        let mut bits = info.clone();
        while (bits.len() + convcode::TAIL_BITS) % (num * 2) != 0 {
            bits.push(0);
        }
        bits.extend(std::iter::repeat_n(0, convcode::TAIL_BITS));
        let mut coded = Vec::new();
        let mut punct = Vec::new();
        let mut mother = Vec::new();
        convcode::encode_half_into(&bits, &mut coded);
        prop_assert_eq!(&coded, &convcode::encode_half(&bits));
        convcode::puncture_into(&coded, rate, &mut punct);
        prop_assert_eq!(&punct, &convcode::puncture(&coded, rate));
        let llrs: Vec<f64> = punct.iter().map(|b| if *b == 0 { 1.0 } else { -1.0 }).collect();
        convcode::depuncture_llr_into(&llrs, rate, coded.len(), &mut mother);
        prop_assert_eq!(&mother, &convcode::depuncture_llr(&llrs, rate, coded.len()));
        let decoded = viterbi::decode_terminated(&mother).expect("terminated trellis");
        prop_assert_eq!(&decoded[..info.len()], &info[..]);
    }

    #[test]
    fn modulation_workspace_roundtrip_and_matches_legacy(
        modulation in prop::sample::select(vec![
            Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64
        ]),
        seed in any::<u64>(),
        h in arb_complex(),
    ) {
        prop_assume!(h.norm_sqr() > 1e-4);
        let bps = modulation.bits_per_symbol();
        let bits: Vec<u8> = (0..bps * 8).map(|i| ((seed >> (i % 64)) & 1) as u8).collect();
        let mut points = Vec::new();
        sourcesync::phy::modulation::map_bits_into(modulation, &bits, &mut points);
        prop_assert_eq!(&points, &sourcesync::phy::modulation::map_bits(modulation, &bits));
        // Hard demap through the channel recovers every bit group, and the
        // table agrees with the allocating demappers bit for bit.
        let mut table = DemapTable::new(modulation);
        let mut hard = Vec::new();
        let mut llrs = Vec::new();
        for (g, x) in points.iter().enumerate() {
            let y = h * *x;
            table.demap_hard_into(y, h, &mut hard);
            prop_assert_eq!(&hard, &bits[g * bps..(g + 1) * bps]);
            prop_assert_eq!(&hard, &sourcesync::phy::modulation::demap_hard(modulation, y, h));
            llrs.clear();
            table.demap_llrs_into(y, h, 1e-3, &mut llrs);
            prop_assert_eq!(&llrs, &sourcesync::phy::modulation::demap_llrs(modulation, y, h, 1e-3));
            for (i, &b) in bits[g * bps..(g + 1) * bps].iter().enumerate() {
                prop_assert!(if b == 0 { llrs[i] > 0.0 } else { llrs[i] < 0.0 });
            }
        }
    }

    #[test]
    fn time_arithmetic_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = Time(a) + Duration(b);
        prop_assert_eq!(t - Time(a), Duration(b));
        prop_assert_eq!(t.saturating_since(Time(a)), Duration(b));
        prop_assert_eq!(Time(a).saturating_since(t), Duration::ZERO);
    }

    #[test]
    fn event_queue_pops_in_time_then_fifo_order(
        ops in proptest::collection::vec((0u8..4, 0u64..50), 1..200),
    ) {
        // Arbitrary interleaving of pushes (op 1..4, with heavy time
        // collisions from the tiny time range) and pops (op 0) against a
        // reference model: the queue must always yield the pending event
        // with the smallest (time, insertion index).
        let mut q = sourcesync::sim::EventQueue::new();
        let mut model: Vec<(u64, usize)> = Vec::new(); // (time, insertion id)
        let mut next_id = 0usize;
        for (op, t) in ops {
            if op == 0 {
                let popped = q.pop().map(|s| (s.at, s.event));
                let expect = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(time, id))| (time, id))
                    .map(|(i, _)| i);
                match (popped, expect) {
                    (None, None) => {}
                    (Some((at, event)), Some(i)) => {
                        let (mt, mid) = model.remove(i);
                        prop_assert_eq!(at, Time(mt), "popped wrong instant");
                        prop_assert_eq!(event, mid, "FIFO tie-break violated");
                    }
                    (got, want) => prop_assert!(false, "pop {got:?} vs model {want:?}"),
                }
            } else {
                q.schedule(Time(t), next_id);
                model.push((t, next_id));
                next_id += 1;
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(
                q.peek_time(),
                model.iter().map(|&(t, _)| Time(t)).min()
            );
        }
        // Drain: the remainder must come out fully sorted, FIFO within ties.
        let mut last: Option<(Time, usize)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!((s.at, s.event) > (lt, lid), "order violated in drain");
            }
            last = Some((s.at, s.event));
        }
    }

    #[test]
    fn time_roundtrips_through_sample_counts_exactly(
        n in 0u64..1_000_000_000,
        period in prop::sample::select(vec![7_812_500u64, 50_000_000]),
        extra in 0u64..1_000_000,
    ) {
        // A whole number of samples is exactly representable: femtosecond
        // precision survives Duration ↔ sample-count round trips.
        let d = Duration::from_samples(n, period);
        prop_assert_eq!(d.0, n * period);
        prop_assert_eq!(d.as_samples_f64(period), n as f64);
        // An on-grid instant recovers its sample index exactly, and the
        // grid-rounding helpers are identities on it.
        let t = Time(n * period);
        prop_assert_eq!(t.sample_index(period), n);
        prop_assert_eq!(t.ceil_to_sample(period), t);
        prop_assert_eq!(t.round_to_sample(period), t);
        // Off-grid instants floor to the same index until the next tick.
        let off = Time(n * period + extra % period);
        prop_assert_eq!(off.sample_index(period), n);
        // Time + Duration arithmetic is exact at femtosecond granularity.
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(Time(0) + d + d, Time(2 * n * period));
    }

    #[test]
    fn sample_grid_rounding(t in 0u64..u64::MAX / 2, period in prop::sample::select(vec![7_812_500u64, 50_000_000])) {
        let time = Time(t);
        let up = time.ceil_to_sample(period);
        let near = time.round_to_sample(period);
        prop_assert_eq!(up.0 % period, 0);
        prop_assert_eq!(near.0 % period, 0);
        prop_assert!(up.0 >= time.0 && up.0 - time.0 < period);
        let err = near.0.abs_diff(time.0);
        prop_assert!(err * 2 <= period);
    }
}
