//! Cross-crate integration tests: the full SourceSync pipeline through the
//! facade crate, exactly as a downstream user would drive it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::channel::Position;
use sourcesync::core::{
    run_joint_transmission, tracking_update, CosenderPlan, DelayDatabase, JointConfig,
};
use sourcesync::phy::{OfdmParams, RateId};
use sourcesync::sim::{ChannelModels, Network, NodeId};

fn three_node_net(seed: u64, multipath: bool) -> Network {
    let params = OfdmParams::dot11a();
    let models = if multipath {
        ChannelModels::testbed(&params)
    } else {
        ChannelModels::clean(&params)
    };
    let positions = vec![
        Position::new(1.0, 1.0),
        Position::new(14.0, 2.0),
        Position::new(8.0, 11.0),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    Network::build(&mut rng, &params, &positions, &models)
}

#[test]
fn joint_frame_through_multipath_fading() {
    // The full stack over frequency-selective fading channels, not just
    // the clean channels of the unit tests.
    let mut delivered = 0;
    for seed in 0..5u64 {
        let mut net = three_node_net(seed, true);
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let mut db = DelayDatabase::new();
        if !db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 3) {
            continue;
        }
        let Some(sol) = db.wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)]) else {
            continue;
        };
        let payload = vec![0xAB; 300];
        let cfg = JointConfig {
            cp_extension: 16,
            ..Default::default()
        };
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &cfg,
        );
        if out.reports[0].payload.as_deref() == Some(&payload[..]) {
            delivered += 1;
        }
    }
    assert!(
        delivered >= 4,
        "only {delivered}/5 joint frames decoded over fading"
    );
}

#[test]
fn tracking_loop_converges() {
    // §4.5: repeated ACK feedback should shrink the measured misalignment.
    let mut net = three_node_net(42, false);
    let mut rng = StdRng::seed_from_u64(43);
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 2));
    // Start from a deliberately wrong wait (+3 samples at 20 Msps).
    let mut wait = db
        .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
        .unwrap()
        .waits[0]
        + 150e-9;
    let payload = vec![1u8; 60];
    let cfg = JointConfig::default();
    let mut history = Vec::new();
    for _ in 0..6 {
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: wait,
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &cfg,
        );
        let Some(m) = out.reports[0].measured_misalign_s[0] else {
            panic!("no misalignment measurement");
        };
        history.push(m.abs());
        wait = tracking_update(wait, m);
    }
    let first = history[0];
    let last = *history.last().unwrap();
    assert!(
        last < first / 2.0 || last < 20e-9,
        "tracking did not converge: {history:?}"
    );
}

#[test]
fn three_cosenders_replicated_alamouti() {
    // Five nodes: lead, three co-senders, receiver — exercises the >2
    // sender codebook path end to end.
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(6.0, 0.0),
        Position::new(0.0, 6.0),
        Position::new(6.0, 6.0),
        Position::new(3.0, 12.0),
    ];
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    let all: Vec<NodeId> = (0..5).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &all, 2));
    let cos = [NodeId(1), NodeId(2), NodeId(3)];
    let sol = db.wait_solution(NodeId(0), &cos, &[NodeId(4)]).unwrap();
    let plans: Vec<CosenderPlan> = cos
        .iter()
        .zip(&sol.waits)
        .map(|(&node, &wait_s)| CosenderPlan { node, wait_s })
        .collect();
    let payload = vec![0x5C; 200];
    let out = run_joint_transmission(
        &mut net,
        &mut rng,
        NodeId(0),
        &plans,
        &[NodeId(4)],
        &payload,
        &db,
        &JointConfig::default(),
    );
    let report = &out.reports[0];
    assert!(report.header_ok);
    let joined = report.co_channels.iter().filter(|c| c.is_some()).count();
    assert!(joined >= 2, "only {joined}/3 co-senders joined");
    assert_eq!(report.payload.as_deref(), Some(&payload[..]));
}

#[test]
fn multi_receiver_lp_reduces_worst_misalignment() {
    // §4.6: two receivers; LP waits should beat single-receiver waits on
    // the worst-case true misalignment.
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),  // lead
        Position::new(20.0, 0.0), // co-sender
        Position::new(2.0, 9.0),  // rx A (near lead)
        Position::new(18.0, 9.0), // rx B (near co)
    ];
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    let all: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &all, 3));
    let receivers = [NodeId(2), NodeId(3)];
    let lp = db
        .wait_solution(NodeId(0), &[NodeId(1)], &receivers)
        .unwrap();
    let single_rx = db
        .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
        .unwrap();

    let worst = |wait: f64, rng: &mut StdRng, net: &mut Network| -> f64 {
        let cfg = JointConfig {
            cp_extension: 12,
            ..Default::default()
        };
        let out = run_joint_transmission(
            net,
            rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: wait,
            }],
            &receivers,
            &[9u8; 80],
            &db,
            &cfg,
        );
        out.true_misalign_s
            .iter()
            .flatten()
            .filter(|m| m.is_finite())
            .fold(0.0f64, |a, m| a.max(m.abs()))
    };
    let w_lp = worst(lp.waits[0], &mut rng, &mut net);
    let w_single = worst(single_rx.waits[0], &mut rng, &mut net);
    // LP optimises the max across receivers; single-rx waits sacrifice the
    // other receiver. Allow jitter slack: LP must not be meaningfully worse.
    assert!(
        w_lp <= w_single + 30e-9,
        "LP worst {w_lp} vs single-rx worst {w_single}"
    );
}

#[test]
fn rates_sweep_through_joint_path() {
    // Joint frames decode at several data rates (exercises interleaver /
    // puncturing combinations through the combiner).
    let mut net = three_node_net(55, false);
    let mut rng = StdRng::seed_from_u64(56);
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 2));
    let sol = db
        .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
        .unwrap();
    for rate in [RateId::R6, RateId::R12, RateId::R24, RateId::R36] {
        let payload = vec![rate.to_index(); 150];
        let cfg = JointConfig {
            rate,
            ..Default::default()
        };
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &cfg,
        );
        assert_eq!(
            out.reports[0].payload.as_deref(),
            Some(&payload[..]),
            "rate {rate:?} failed"
        );
    }
}
