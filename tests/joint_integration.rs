//! Cross-crate integration tests: the full SourceSync pipeline through the
//! facade crate, exactly as a downstream user would drive it — both the
//! one-call `run_joint_transmission` wrapper and the staged `JointSession`
//! per-role API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::channel::Position;
use sourcesync::core::{
    run_joint_transmission, tracking_update, CosenderPlan, DelayDatabase, JoinFailure, JointConfig,
    JointSession, HEADER_RATE,
};
use sourcesync::phy::{frame, OfdmParams, RateId, Transmitter};
use sourcesync::sim::{ChannelModels, Network, NodeId};

fn three_node_net(seed: u64, multipath: bool) -> Network {
    let params = OfdmParams::dot11a();
    let models = if multipath {
        ChannelModels::testbed(&params)
    } else {
        ChannelModels::clean(&params)
    };
    let positions = vec![
        Position::new(1.0, 1.0),
        Position::new(14.0, 2.0),
        Position::new(8.0, 11.0),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    Network::build(&mut rng, &params, &positions, &models)
}

#[test]
fn joint_frame_through_multipath_fading() {
    // The full stack over frequency-selective fading channels, not just
    // the clean channels of the unit tests.
    let mut delivered = 0;
    for seed in 0..5u64 {
        let mut net = three_node_net(seed, true);
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let mut db = DelayDatabase::new();
        if !db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 3) {
            continue;
        }
        let Some(sol) = db.wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)]) else {
            continue;
        };
        let payload = vec![0xAB; 300];
        let cfg = JointConfig {
            cp_extension: 16,
            ..Default::default()
        };
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &cfg,
        );
        if out.reports[0].payload.as_deref() == Some(&payload[..]) {
            delivered += 1;
        }
    }
    assert!(
        delivered >= 4,
        "only {delivered}/5 joint frames decoded over fading"
    );
}

#[test]
fn tracking_loop_converges() {
    // §4.5: repeated ACK feedback should shrink the measured misalignment.
    let mut net = three_node_net(42, false);
    let mut rng = StdRng::seed_from_u64(43);
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 2));
    // Start from a deliberately wrong wait (+3 samples at 20 Msps).
    let mut wait = db
        .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
        .unwrap()
        .waits[0]
        + 150e-9;
    let payload = vec![1u8; 60];
    let cfg = JointConfig::default();
    let mut history = Vec::new();
    for _ in 0..6 {
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: wait,
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &cfg,
        );
        let Some(m) = out.reports[0].measured_misalign_s[0] else {
            panic!("no misalignment measurement");
        };
        history.push(m.abs());
        wait = tracking_update(wait, m);
    }
    let first = history[0];
    let last = *history.last().unwrap();
    assert!(
        last < first / 2.0 || last < 20e-9,
        "tracking did not converge: {history:?}"
    );
}

#[test]
fn three_cosenders_replicated_alamouti() {
    // Five nodes: lead, three co-senders, receiver — exercises the >2
    // sender codebook path end to end.
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(6.0, 0.0),
        Position::new(0.0, 6.0),
        Position::new(6.0, 6.0),
        Position::new(3.0, 12.0),
    ];
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    let all: Vec<NodeId> = (0..5).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &all, 2));
    let cos = [NodeId(1), NodeId(2), NodeId(3)];
    let sol = db.wait_solution(NodeId(0), &cos, &[NodeId(4)]).unwrap();
    let plans: Vec<CosenderPlan> = cos
        .iter()
        .zip(&sol.waits)
        .map(|(&node, &wait_s)| CosenderPlan { node, wait_s })
        .collect();
    let payload = vec![0x5C; 200];
    let out = run_joint_transmission(
        &mut net,
        &mut rng,
        NodeId(0),
        &plans,
        &[NodeId(4)],
        &payload,
        &db,
        &JointConfig::default(),
    );
    let report = &out.reports[0];
    assert!(report.header_ok);
    let joined = report.co_channels.iter().filter(|c| c.is_some()).count();
    assert!(joined >= 2, "only {joined}/3 co-senders joined");
    assert_eq!(report.payload.as_deref(), Some(&payload[..]));
}

#[test]
fn multi_receiver_lp_reduces_worst_misalignment() {
    // §4.6: two receivers; LP waits should beat single-receiver waits on
    // the worst-case true misalignment.
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),  // lead
        Position::new(20.0, 0.0), // co-sender
        Position::new(2.0, 9.0),  // rx A (near lead)
        Position::new(18.0, 9.0), // rx B (near co)
    ];
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    let all: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &all, 3));
    let receivers = [NodeId(2), NodeId(3)];
    let lp = db
        .wait_solution(NodeId(0), &[NodeId(1)], &receivers)
        .unwrap();
    let single_rx = db
        .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
        .unwrap();

    let worst = |wait: f64, rng: &mut StdRng, net: &mut Network| -> f64 {
        let cfg = JointConfig {
            cp_extension: 12,
            ..Default::default()
        };
        let out = run_joint_transmission(
            net,
            rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: wait,
            }],
            &receivers,
            &[9u8; 80],
            &db,
            &cfg,
        );
        out.true_misalign_s
            .iter()
            .flatten()
            .filter(|m| m.is_finite())
            .fold(0.0f64, |a, m| a.max(m.abs()))
    };
    let w_lp = worst(lp.waits[0], &mut rng, &mut net);
    let w_single = worst(single_rx.waits[0], &mut rng, &mut net);
    // LP optimises the max across receivers; single-rx waits sacrifice the
    // other receiver. Allow jitter slack: LP must not be meaningfully worse.
    assert!(
        w_lp <= w_single + 30e-9,
        "LP worst {w_lp} vs single-rx worst {w_single}"
    );
}

/// Six nodes on a 16 m floor: lead, three co-senders, two receivers.
fn six_node_net(seed: u64) -> Network {
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),   // lead
        Position::new(8.0, 0.0),   // co-sender 1
        Position::new(0.0, 8.0),   // co-sender 2
        Position::new(8.0, 8.0),   // co-sender 3
        Position::new(3.0, 14.0),  // receiver A
        Position::new(12.0, 12.0), // receiver B
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    )
}

#[test]
fn staged_session_three_cosenders_two_receivers() {
    // The configuration the monolith's figure plumbing never exercised:
    // N co-senders × M receivers through the per-role stages, with every
    // co-sender's join outcome individually observable.
    let mut net = six_node_net(70);
    let mut rng = StdRng::seed_from_u64(71);
    let all: Vec<NodeId> = (0..6).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &all, 2));
    let cos = [NodeId(1), NodeId(2), NodeId(3)];
    let receivers = [NodeId(4), NodeId(5)];
    let sol = db.wait_solution(NodeId(0), &cos, &receivers).unwrap();
    let payload = vec![0xE7u8; 250];
    let session = JointSession::new(NodeId(0))
        .cosenders(
            cos.iter()
                .zip(&sol.waits)
                .map(|(&node, &wait_s)| CosenderPlan { node, wait_s }),
        )
        .receivers(receivers)
        .payload(payload.clone())
        .config(JointConfig {
            cp_extension: 12,
            ..Default::default()
        });

    // Drive every stage by hand, in protocol order.
    let frame = session.lead_tx().transmit(&mut net);
    let joins: Vec<_> = (0..cos.len())
        .map(|i| {
            session
                .cosender_join(i, &frame)
                .join(&mut net, &mut rng, &db)
        })
        .collect();
    let joined = joins.iter().filter(|j| j.is_ok()).count();
    assert!(joined >= 2, "only {joined}/3 co-senders joined: {joins:?}");

    for &rcv in &receivers {
        let report = session
            .receiver_decode(rcv, &frame)
            .decode(&mut net, &mut rng);
        assert!(report.header_ok, "{rcv} header failed");
        assert_eq!(
            report.payload.as_deref(),
            Some(&payload[..]),
            "{rcv} joint data failed"
        );
        // Every joined co-sender shows up in this receiver's JCE.
        let seen = report.co_channels.iter().filter(|c| c.is_some()).count();
        assert!(seen >= 2, "{rcv} saw only {seen}/3 co-senders");
    }
}

#[test]
fn session_run_reports_every_join_outcome() {
    // The same 3×2 matrix through the one-call driver: per-co-sender
    // diagnostics arrive typed on the outcome.
    let mut net = six_node_net(80);
    let mut rng = StdRng::seed_from_u64(81);
    let all: Vec<NodeId> = (0..6).map(NodeId).collect();
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &all, 2));
    let cos = [NodeId(1), NodeId(2), NodeId(3)];
    let receivers = [NodeId(4), NodeId(5)];
    let sol = db.wait_solution(NodeId(0), &cos, &receivers).unwrap();
    let out = JointSession::new(NodeId(0))
        .cosenders(
            cos.iter()
                .zip(&sol.waits)
                .map(|(&node, &wait_s)| CosenderPlan { node, wait_s }),
        )
        .receivers(receivers)
        .payload(vec![0x9Du8; 180])
        .config(JointConfig::default())
        .run(&mut net, &mut rng, &db);
    assert_eq!(out.reports.len(), 2);
    assert_eq!(out.cosenders.len(), 3);
    assert_eq!(out.true_misalign_s.len(), 2);
    assert_eq!(out.true_misalign_s[0].len(), 3);
    for (co, outcome) in cos.iter().zip(&out.cosenders) {
        assert_eq!(*co, outcome.node);
    }
    assert_eq!(
        out.joined_count() + out.join_failures().count(),
        out.cosenders.len()
    );
}

#[test]
fn join_failure_no_detect_when_cosender_out_of_range() {
    let params = OfdmParams::dot11a();
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(3000.0, 0.0), // unreachable co-sender
        Position::new(5.0, 7.0),
    ];
    let mut rng = StdRng::seed_from_u64(90);
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    let session = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 0.0,
        })
        .receiver(NodeId(2))
        .payload(vec![0x01u8; 80]);
    let frame = session.lead_tx().transmit(&mut net);
    let join = session
        .cosender_join(0, &frame)
        .join(&mut net, &mut rng, &DelayDatabase::new());
    assert_eq!(join.unwrap_err(), JoinFailure::NoDetect);
}

#[test]
fn join_failure_missing_delay_on_empty_database() {
    // Delay compensation on + an empty database: the co-sender decodes the
    // header fine but must refuse to join (the monolith silently assumed a
    // zero propagation delay here).
    let mut net = three_node_net(91, false);
    let mut rng = StdRng::seed_from_u64(92);
    let session = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 0.0,
        })
        .receiver(NodeId(2))
        .payload(vec![0x02u8; 80]);
    let frame = session.lead_tx().transmit(&mut net);
    let join = session
        .cosender_join(0, &frame)
        .join(&mut net, &mut rng, &DelayDatabase::new());
    assert_eq!(
        join.unwrap_err(),
        JoinFailure::MissingDelay {
            lead: NodeId(0),
            cosender: NodeId(1),
        }
    );
    // The baseline mode needs no database and must still join.
    let baseline = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 0.0,
        })
        .receiver(NodeId(2))
        .payload(vec![0x02u8; 80])
        .config(JointConfig {
            delay_compensation: false,
            ..Default::default()
        });
    let frame = baseline.lead_tx().transmit(&mut net);
    let join = baseline
        .cosender_join(0, &frame)
        .join(&mut net, &mut rng, &DelayDatabase::new());
    assert!(join.is_ok(), "baseline join failed: {join:?}");
}

#[test]
fn join_failure_wrong_packet_on_stale_queue() {
    // The lead announces packet A; a co-sender whose queue head is the
    // *stale* packet B hears the header, parses it, and refuses with the
    // pair of packet ids. Only the staged API can stage a join against a
    // frame that was never that session's own transmission.
    let mut net = three_node_net(93, false);
    let mut rng = StdRng::seed_from_u64(94);
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 2));

    let on_air = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 0.0,
        })
        .receiver(NodeId(2))
        .payload(b"fresh packet the lead announces".to_vec());
    let stale = on_air
        .clone()
        .payload(b"stale packet the co-sender holds".to_vec());

    let _ = on_air.lead_tx().transmit(&mut net); // packet A on the air
    let stale_frame = stale.lead_tx().schedule(&net.params); // packet B, never sent
    let join = stale
        .cosender_join(0, &stale_frame)
        .join(&mut net, &mut rng, &db);
    let expected = sourcesync::core::packet_id(b"stale packet the co-sender holds");
    let heard = sourcesync::core::packet_id(b"fresh packet the lead announces");
    assert_eq!(
        join.unwrap_err(),
        JoinFailure::WrongPacket { expected, heard }
    );
}

#[test]
fn join_failure_not_joint_flagged_on_plain_traffic() {
    // The co-sender hears an ordinary (non-joint) frame where the sync
    // header should have been.
    let mut net = three_node_net(95, false);
    let mut rng = StdRng::seed_from_u64(96);
    let session = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 0.0,
        })
        .receiver(NodeId(2))
        .payload(vec![0x03u8; 80]);
    let frame_sched = session.lead_tx().schedule(&net.params);
    let tx = Transmitter::new(net.params.clone());
    let plain = tx.frame_waveform(&[0xAAu8; 16], HEADER_RATE, 0); // flags = 0
    net.medium.clear_transmissions();
    net.medium.transmit(NodeId(0), frame_sched.t0, plain);
    let join =
        session
            .cosender_join(0, &frame_sched)
            .join(&mut net, &mut rng, &DelayDatabase::new());
    assert_eq!(join.unwrap_err(), JoinFailure::NotJointFlagged);
}

#[test]
fn join_failure_malformed_header_on_truncated_payload() {
    // A joint-flagged frame whose payload is shorter than a sync header.
    let mut net = three_node_net(97, false);
    let mut rng = StdRng::seed_from_u64(98);
    let session = JointSession::new(NodeId(0))
        .cosender(CosenderPlan {
            node: NodeId(1),
            wait_s: 0.0,
        })
        .receiver(NodeId(2))
        .payload(vec![0x04u8; 80]);
    let frame_sched = session.lead_tx().schedule(&net.params);
    let tx = Transmitter::new(net.params.clone());
    let runt = tx.frame_waveform(&[1u8, 2, 3], HEADER_RATE, frame::FLAG_JOINT);
    net.medium.clear_transmissions();
    net.medium.transmit(NodeId(0), frame_sched.t0, runt);
    let join =
        session
            .cosender_join(0, &frame_sched)
            .join(&mut net, &mut rng, &DelayDatabase::new());
    assert_eq!(join.unwrap_err(), JoinFailure::MalformedHeader);
}

#[test]
fn rates_sweep_through_joint_path() {
    // Joint frames decode at several data rates (exercises interleaver /
    // puncturing combinations through the combiner).
    let mut net = three_node_net(55, false);
    let mut rng = StdRng::seed_from_u64(56);
    let mut db = DelayDatabase::new();
    assert!(db.measure_all(&mut net, &mut rng, &[NodeId(0), NodeId(1), NodeId(2)], 2));
    let sol = db
        .wait_solution(NodeId(0), &[NodeId(1)], &[NodeId(2)])
        .unwrap();
    for rate in [RateId::R6, RateId::R12, RateId::R24, RateId::R36] {
        let payload = vec![rate.to_index(); 150];
        let cfg = JointConfig {
            rate,
            ..Default::default()
        };
        let out = run_joint_transmission(
            &mut net,
            &mut rng,
            NodeId(0),
            &[CosenderPlan {
                node: NodeId(1),
                wait_s: sol.waits[0],
            }],
            &[NodeId(2)],
            &payload,
            &db,
            &cfg,
        );
        assert_eq!(
            out.reports[0].payload.as_deref(),
            Some(&payload[..]),
            "rate {rate:?} failed"
        );
    }
}
