//! Allocation-regression tests: a counting global allocator proves the
//! zero-allocation claims of the modem workspaces.
//!
//! The allocator wraps [`System`] and counts allocation events (alloc,
//! alloc_zeroed, realloc) in a thread-local, so concurrently running tests
//! in this binary cannot pollute each other's counts. The headline
//! assertions:
//!
//! * the steady-state per-symbol receive loop (window demod → equalise →
//!   LLR demap) performs **zero** heap allocations after warm-up,
//! * so does the per-symbol transmit loop,
//! * a warmed full-frame `receive_with` allocates only per-frame
//!   bookkeeping — the count does not scale with the symbol count,
//! * and the workspace-threaded frame/combiner entry points allocate
//!   several times less than their legacy allocating twins.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sourcesync::core::{
    decode_joint_data, decode_joint_data_with, joint_data_waveform, CombineWorkspace,
    DataSectionSpec, JointDataWindow, RoleChannels,
};
use sourcesync::dsp::rng::ComplexGaussian;
use sourcesync::dsp::{Complex64, Fft};
use sourcesync::phy::chanest::ChannelEstimate;
use sourcesync::phy::modulation::DemapTable;
use sourcesync::phy::{
    frame, ofdm, Modulation, OfdmParams, RateId, Receiver, RxWorkspace, Transmitter, TxWorkspace,
};

struct CountingAlloc;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    // `try_with` so allocations during TLS teardown cannot panic inside
    // the allocator.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: every method delegates verbatim to `System`, the allocator the
// program would use anyway; the counter bump allocates nothing itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System.alloc` — forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    // SAFETY: same contract as `System.alloc_zeroed` — forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    // SAFETY: same contract as `System.realloc` — forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same contract as `System.dealloc` — forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns (allocation events on this thread, result).
fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let start = ALLOC_EVENTS.with(|c| c.get());
    let result = f();
    let end = ALLOC_EVENTS.with(|c| c.get());
    (end - start, result)
}

#[test]
fn counter_actually_counts() {
    let (n, v) = allocations(|| Vec::<u8>::with_capacity(64));
    assert!(n >= 1, "allocator counter saw nothing");
    drop(v);
}

#[test]
fn per_symbol_rx_loop_is_allocation_free_after_warmup() {
    // The steady-state per-symbol receive loop: FFT-window demodulation,
    // per-carrier equalisation, and max-log LLR demapping, exactly as
    // `Receiver::receive_with` runs it per OFDM symbol — driven through
    // the public workspace entry points on a real transmitted frame.
    let params = OfdmParams::dot11a();
    let fft = Fft::new(params.fft_size);
    let tx = Transmitter::new(params.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let payload: Vec<u8> = (0..800).map(|_| rng.gen()).collect();
    let wave = tx.frame_waveform(&payload, RateId::R24, 0);

    let mut grid: Vec<Complex64> = Vec::new();
    let mut llrs: Vec<f64> = Vec::new();
    let mut table = DemapTable::new(Modulation::Qam16);
    let sym_len = params.symbol_len();
    let n_syms = wave.len() / sym_len;
    let h = Complex64::from_polar(0.9, 0.3);

    let pass = |grid: &mut Vec<Complex64>, llrs: &mut Vec<f64>, table: &mut DemapTable| {
        let mut acc = 0.0f64;
        for s in 0..n_syms {
            ofdm::demodulate_window_into(&params, &fft, &wave, s * sym_len + params.cp_len, grid);
            llrs.clear();
            for &k in &params.data_carriers {
                let y = grid[params.bin(k)];
                table.demap_llrs_into(y, h, 1e-2, llrs);
            }
            acc += llrs[0];
        }
        acc
    };

    // Warm-up grows every buffer to its working size...
    let warm = pass(&mut grid, &mut llrs, &mut table);
    // ...after which the identical loop must not allocate at all.
    let (n, steady) = allocations(|| pass(&mut grid, &mut llrs, &mut table));
    assert_eq!(
        n, 0,
        "steady-state per-symbol rx loop performed {n} heap allocations"
    );
    assert_eq!(warm.to_bits(), steady.to_bits(), "passes diverged");
}

#[test]
fn per_symbol_tx_loop_is_allocation_free_after_warmup() {
    let params = OfdmParams::dot11a();
    let fft = Fft::new(params.fft_size);
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<Complex64> = (0..params.n_data())
        .map(|_| ComplexGaussian::unit().sample(&mut rng))
        .collect();
    let mut ws = TxWorkspace::new(&params);
    let mut out: Vec<Complex64> = Vec::new();

    let pass = |ws: &mut TxWorkspace, out: &mut Vec<Complex64>| {
        out.clear();
        for s in 0..40 {
            ofdm::modulate_symbol_append(&params, &fft, &data, s, params.cp_len, true, ws, out);
        }
    };

    pass(&mut ws, &mut out);
    let (n, ()) = allocations(|| pass(&mut ws, &mut out));
    assert_eq!(
        n, 0,
        "steady-state per-symbol tx loop performed {n} heap allocations"
    );
}

#[test]
fn warmed_receive_with_allocates_an_order_less_than_legacy() {
    let params = OfdmParams::dot11a();
    let tx = Transmitter::new(params.clone());
    let rx = Receiver::new(params.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let payload: Vec<u8> = (0..600).map(|_| rng.gen()).collect();
    let wave = tx.frame_waveform(&payload, RateId::R12, 0);
    let noise_p = sourcesync::dsp::stats::linear_from_db(-30.0);
    let mut buf = ComplexGaussian::with_power(noise_p).sample_vec(&mut rng, wave.len() + 600);
    for (i, s) in wave.iter().enumerate() {
        buf[200 + i] += *s;
    }

    // A frame with 4x the payload (4x the data symbols), same channel.
    let payload_long: Vec<u8> = (0..2400).map(|_| rng.gen()).collect();
    let wave_long = tx.frame_waveform(&payload_long, RateId::R12, 0);
    let mut buf_long =
        ComplexGaussian::with_power(noise_p).sample_vec(&mut rng, wave_long.len() + 600);
    for (i, s) in wave_long.iter().enumerate() {
        buf_long[200 + i] += *s;
    }

    let mut ws = RxWorkspace::new(&params);
    let _ = rx.receive_with(&buf, &mut ws).expect("warmup decode");
    let _ = rx
        .receive_with(&buf_long, &mut ws)
        .expect("warmup decode long");
    let (n_ws, pooled) = allocations(|| rx.receive_with(&buf, &mut ws));
    let (n_ws_long, pooled_long) = allocations(|| rx.receive_with(&buf_long, &mut ws));
    let (n_legacy, legacy) = allocations(|| rx.receive(&buf));
    assert_eq!(
        pooled.expect("pooled decode").payload,
        legacy.expect("legacy decode").payload
    );
    assert_eq!(pooled_long.expect("pooled long").payload, payload_long);
    eprintln!("rx allocs: short={n_ws} long={n_ws_long} legacy={n_legacy}");
    // The workspace path must beat the legacy path even though the legacy
    // wrappers now delegate to the same lean internals (their only
    // overhead is building throwaway workspace machinery per call)...
    assert!(
        n_ws * 2 <= n_legacy,
        "warmed workspace rx allocated {n_ws} vs legacy {n_legacy} — expected >=2x reduction"
    );
    // ...and, the stronger claim: what remains is per-frame bookkeeping,
    // not per-symbol churn — 4x the OFDM symbols may not cost 4x the
    // allocations, only the O(log) growth of the frame-level vectors.
    assert!(
        n_ws_long < n_ws + n_ws / 2 + 25,
        "per-frame allocations scale with symbol count: {n_ws} -> {n_ws_long}"
    );
}

#[test]
fn warmed_combiner_allocates_an_order_less_than_legacy() {
    let params = OfdmParams::dot11a();
    let fft = Fft::new(params.fft_size);
    let mut rng = StdRng::seed_from_u64(4);
    let psdu: Vec<u8> = (0..300).map(|_| rng.gen()).collect();
    let spec = DataSectionSpec {
        rate: RateId::R12,
        cp_len: params.cp_len,
        smart_combiner: true,
        pilot_sharing: true,
    };
    let h_a = Complex64::from_polar(1.0, 0.4);
    let h_b = Complex64::from_polar(0.8, -1.2);
    let wa = joint_data_waveform(&params, &fft, &psdu, sourcesync::stbc::Codeword::A, &spec);
    let wb = joint_data_waveform(&params, &fft, &psdu, sourcesync::stbc::Codeword::B, &spec);
    let noise = ComplexGaussian::with_power(1e-4);
    let buf: Vec<Complex64> = wa
        .iter()
        .zip(&wb)
        .map(|(a, b)| h_a * *a + h_b * *b + noise.sample(&mut rng))
        .collect();
    let occupied = params.occupied_carriers();
    let mk = |v: Complex64| ChannelEstimate {
        carriers: occupied.clone(),
        values: vec![v; occupied.len()],
        noise_power: 1e-4,
    };
    let (lead, co) = (mk(h_a), mk(h_b));
    let roles = RoleChannels::from_estimates(&params, &[Some(&lead), Some(&co)]);
    let window = JointDataWindow {
        data_start: 0,
        n_syms: frame::n_data_symbols(&params, psdu.len(), RateId::R12),
        psdu_len: psdu.len(),
        backoff: 0,
    };

    let mut ws = CombineWorkspace::new(&params);
    let _ = decode_joint_data_with(&params, &fft, &buf, &window, &spec, &roles, &mut ws)
        .expect("warmup decode");
    let (n_ws, pooled) = allocations(|| {
        decode_joint_data_with(&params, &fft, &buf, &window, &spec, &roles, &mut ws)
    });
    let (n_legacy, legacy) =
        allocations(|| decode_joint_data(&params, &fft, &buf, &window, &spec, &roles));
    assert_eq!(
        pooled.expect("pooled").0,
        legacy.expect("legacy").0,
        "decoded PSDUs diverged"
    );
    eprintln!("combiner allocs: ws={n_ws} legacy={n_legacy}");
    assert!(
        n_ws * 2 <= n_legacy,
        "warmed combiner allocated {n_ws} vs legacy {n_legacy} — expected >=2x reduction"
    );
}
