//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A length specification: one fixed size or a half-open range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates vectors whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
