//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy that picks one element of a fixed list uniformly at random.
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}

/// Selects uniformly from the given non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select(options)
}
