//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset of its API this workspace uses.
//!
//! Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message but does not minimise them.
//! * **Deterministic seeding.** Each `#[test]` derives its RNG seed from the
//!   test name, so failures reproduce exactly across runs and machines.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assume!`], [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], and
//! [`sample::select`].

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirrors the `prop` module alias from the real prelude.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs a block of property tests, one generated input set per case.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current test case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current test case (re-drawing fresh inputs) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
