//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite values spanning a wide dynamic range; real proptest also
        // avoids NaN/inf by default.
        let mag: f64 = rng.gen_range(-300.0..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// The strategy type returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
