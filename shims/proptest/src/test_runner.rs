//! The case runner behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property does not hold for these inputs.
    Fail(String),
    /// A `prop_assume!` precondition failed; draw fresh inputs and retry.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives a deterministic RNG seed from the test name so failures
/// reproduce across runs and machines.
fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `case` until `config.cases` cases pass, panicking on the first
/// failure or when rejects outnumber passes 16:1.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut passed: u64 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = config.cases as u64 * 16;
    while passed < config.cases as u64 {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing cases:\n{msg}");
            }
        }
    }
}
