//! The [`Strategy`] trait and the basic combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest there is no value tree: strategies draw a fresh
/// value per case and failures are not shrunk.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, rejecting (and re-drawing) those for which
    /// the predicate returns `false`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)] // macro binds tuple fields by their type params
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
