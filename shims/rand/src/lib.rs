//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the exact subset of the `rand` 0.8 API the repository uses:
//!
//! * [`Rng`] with `gen`, `gen_range`, `gen_bool`, and `fill`
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`]
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator real `rand` uses — so streams differ from upstream `rand`, but
//! they are deterministic per seed, uniform, and statistically strong enough
//! for the Monte-Carlo tests in this workspace (moment checks on 2e5 samples).

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution for `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution in real `rand`).
pub trait StandardSample {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over a bounded interval.
///
/// Mirroring real `rand`'s structure — one blanket [`SampleRange`] impl over
/// `T: SampleUniform` rather than per-type range impls — matters for type
/// inference: it lets `rng.gen_range(-3.0..3.0)` unify the literal with the
/// surrounding expression the same way upstream `rand` does.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * <$t>::sample_standard(rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * <$t>::sample_standard(rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                let off = uniform_below(rng, span);
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(10);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(4);
        let _ = draw(&mut r);
    }
}
