//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset this workspace's benches use — [`Criterion`] with
//! builder-style config, [`Bencher::iter`] / [`Bencher::iter_batched`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical sampling it times a fixed number of iterations
//! per sample and prints median per-iteration wall-clock time. Use
//! `[[bench]] harness = false` in the consuming crate, as with real
//! criterion.

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim times every routine
/// call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One benchmark's timing summary, as collected by [`Criterion::bench_function`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration wall-clock time, nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

/// Benchmark harness entry point; collects per-benchmark timings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the untimed warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the timed measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up pass: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
        }

        // Timed samples.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{name:<40} median {:>12.1} ns/iter  ({} samples)",
            median * 1e9,
            per_iter.len()
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median * 1e9,
            samples: per_iter.len(),
        });
        self
    }

    /// Every result collected so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// A machine-readable summary of the collected results — the payload
    /// committed as a `BENCH_*.json` baseline and uploaded as a CI
    /// artifact. Upstream criterion writes per-benchmark JSON under
    /// `target/criterion/`; the shim exposes one flat document instead.
    pub fn summary_json(&self, suite: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{suite}\",\n"));
        out.push_str("  \"unit\": \"ns_per_iter_median\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"median_ns\": {:.1}, \"samples\": {} }}{comma}\n",
                r.name, r.median_ns, r.samples
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Passed to benchmark closures; times the routine they hand it.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

/// Calls timed per `Bencher::iter*` invocation, amortising the ~tens-of-ns
/// `Instant::now()` bracket over a batch so sub-microsecond routines are
/// not dominated by clock-read overhead.
const CALLS_PER_SAMPLE: u64 = 64;

impl Bencher {
    /// Times a batch of calls of `routine` under one clock bracket.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..CALLS_PER_SAMPLE {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += CALLS_PER_SAMPLE;
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded
    /// by pausing the clock around each setup call.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..CALLS_PER_SAMPLE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += CALLS_PER_SAMPLE;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
