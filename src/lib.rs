//! # sourcesync
//!
//! A full reproduction of *SourceSync: A Distributed Wireless Architecture
//! for Exploiting Sender Diversity* (Rahul, Hassanieh, Katabi — SIGCOMM
//! 2010) as a Rust workspace, running over a sample-level software-defined
//! radio simulator instead of the paper's WiGLAN FPGA testbed.
//!
//! This facade crate re-exports every workspace crate under a stable prefix
//! so examples and downstream users need a single dependency:
//!
//! * [`dsp`] — complex numbers, FFT, correlation, fractional delay, stats
//! * [`phy`] — the 802.11-style OFDM modem
//! * [`channel`] — multipath fading, path loss, AWGN, CFO, propagation delay
//! * [`stbc`] — Alamouti and quasi-orthogonal space-time block codes
//! * [`linprog`] — simplex solver for the multi-receiver wait-time LP
//! * [`sim`] — the femtosecond-resolution discrete-event simulator
//! * [`mac`] — CSMA/CA and the joint-frame MAC extension
//! * [`core`] — SourceSync itself: Symbol-Level Synchronizer, Joint Channel
//!   Estimator, Smart Combiner, joint frame protocol
//! * [`routing`] — ETX, single-path routing, ExOR, ExOR+SourceSync
//! * [`testbed`] — the event-driven testbed: the real protocol stack
//!   (CSMA/CA, ARQ, ExOR, joint frames) over the sample-level medium
//! * [`lasthop`] — multi-AP last-hop diversity with SampleRate
//! * [`exp`] — the declarative, parallel experiment harness behind the
//!   `ssync-lab` runner and every figure binary
//! * [`obs`] — deterministic observability: structured sim-time tracing,
//!   the metric registry, and the Perfetto/Chrome trace exporter
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results for every evaluation figure.

// No unsafe anywhere in this crate: the determinism contract is easier
// to audit when the only unsafe in the workspace is ssync_phy's fenced
// AVX2 tier (see DESIGN.md and ssync_lint's `undocumented-unsafe` rule).
#![forbid(unsafe_code)]

pub use ssync_channel as channel;
pub use ssync_core as core;
pub use ssync_dsp as dsp;
pub use ssync_exp as exp;
pub use ssync_lasthop as lasthop;
pub use ssync_linprog as linprog;
pub use ssync_mac as mac;
pub use ssync_obs as obs;
pub use ssync_phy as phy;
pub use ssync_routing as routing;
pub use ssync_sim as sim;
pub use ssync_stbc as stbc;
pub use ssync_testbed as testbed;
