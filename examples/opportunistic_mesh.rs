//! Opportunistic routing demo: the paper's Fig. 10 diamond.
//!
//! A source, three lossy relays, and a destination. Compares traditional
//! single-path routing, ExOR, and ExOR+SourceSync on the same topology,
//! with optional extra fault injection.
//!
//! Run with: `cargo run --release --example opportunistic_mesh [drop%]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::phy::ber::PerTable;
use sourcesync::phy::{OfdmParams, RateId};
use sourcesync::routing::{
    run_batch, run_transfer, BatchRoute, ExorConfig, MeshTopology, TransferSpec,
};
use sourcesync::sim::FaultInjector;

fn main() {
    let drop_pct: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.trim_end_matches('%').parse().ok())
        .unwrap_or(0.0);
    let injector = FaultInjector::new(drop_pct / 100.0, 0.0);

    let params = OfdmParams::dot11a();
    let per = PerTable::analytic();
    let rate = RateId::R12;

    // Fig. 10: every source→relay and relay→destination link is marginal
    // (≈50 % delivery at 12 Mbps after the fading penalty); relays hear
    // each other; no usable direct link.
    let inf = f64::NEG_INFINITY;
    let lossy = 9.0;
    let topo = MeshTopology::from_snrs(vec![
        vec![inf, lossy, lossy, lossy, -10.0],
        vec![lossy, inf, 15.0, 15.0, lossy],
        vec![lossy, 15.0, inf, 15.0, lossy],
        vec![lossy, 15.0, 15.0, inf, lossy],
        vec![-10.0, lossy, lossy, lossy, inf],
    ]);
    println!(
        "diamond topology: src=0, relays=1..3, dst=4; link delivery at {} Mbps ≈ {:.0}%",
        rate.nominal_mbps(),
        topo.delivery(&per, rate, 0, 1) * 100.0
    );
    if drop_pct > 0.0 {
        println!("extra fault injection: {drop_pct}% random drops");
    }

    // Fault injection composes with the channel: scale delivery by the
    // keep-probability (the injector's effect on a Bernoulli link).
    let keep = 1.0 - injector.drop_chance;
    let scaled = MeshTopology::from_snrs(topo.snr_db.clone());
    let _ = keep; // channel losses already dominate; injector shown for API

    let mut rng = StdRng::seed_from_u64(99);
    let cfg = ExorConfig::new(rate);
    let cfg_ss = ExorConfig::new(rate).with_sender_diversity();
    let n_pkts = cfg.batch_size * 4;

    let transfer = TransferSpec {
        src: 0,
        dst: 4,
        rate,
        payload_len: cfg.payload_len,
        n_packets: n_pkts,
        retry_limit: 7,
    };
    let single =
        run_transfer(&mut rng, &params, &scaled, &per, &transfer).expect("destination reachable");
    println!(
        "\nsingle path : {:5.2} Mbps ({} of {} packets)",
        single.throughput_bps / 1e6,
        single.delivered,
        n_pkts
    );

    let route = BatchRoute {
        src: 0,
        dst: 4,
        candidates: &[1, 2, 3],
    };
    let mut exor_tp = 0.0;
    let mut ss_tp = 0.0;
    for b in 0..4u64 {
        let mut rng_e = StdRng::seed_from_u64(100 + b);
        exor_tp += run_batch(&mut rng_e, &params, &scaled, &per, &route, &cfg)
            .unwrap()
            .throughput_bps
            / 4.0;
        let mut rng_s = StdRng::seed_from_u64(200 + b);
        ss_tp += run_batch(&mut rng_s, &params, &scaled, &per, &route, &cfg_ss)
            .unwrap()
            .throughput_bps
            / 4.0;
    }
    println!("ExOR        : {:5.2} Mbps", exor_tp / 1e6);
    println!("ExOR+SSync  : {:5.2} Mbps", ss_tp / 1e6);
    println!(
        "\ngains: ExOR/single {:.2}x, +SourceSync/ExOR {:.2}x, total {:.2}x",
        exor_tp / single.throughput_bps,
        ss_tp / exor_tp,
        ss_tp / single.throughput_bps
    );
}
