//! Last-hop WLAN demo (paper §7.1, Fig. 9): a client associated with two
//! APs, downlink via the single best AP vs SourceSync joint transmission.
//!
//! Run with: `cargo run --release --example lasthop_wlan [snr1_db snr2_db]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::lasthop::{
    run_session, Association, ClientScenario, Controller, Mode, SessionSpec,
};
use sourcesync::phy::ber::PerTable;
use sourcesync::phy::OfdmParams;
use sourcesync::sim::NodeId;

fn main() {
    let mut args = std::env::args().skip(1);
    let snr1: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(11.0);
    let snr2: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(9.0);

    let params = OfdmParams::dot11a();
    let per = PerTable::analytic();

    // The wired-side controller: client 100 associates with the two APs,
    // the better one becomes the lead and gets codeword 1.
    let mut controller = Controller::new();
    let aps = [NodeId(1), NodeId(2)];
    let assoc = Association::associate(NodeId(100), &aps, 2, |ap| {
        if ap == NodeId(1) {
            snr1
        } else {
            snr2
        }
    });
    println!(
        "client associated with {:?}; lead AP = {}, co-sender APs = {:?}",
        assoc.aps,
        assoc.lead(),
        assoc.cosenders()
    );
    controller.register(assoc);

    let scenario = ClientScenario {
        downlink_snr_db: vec![snr1.max(snr2), snr1.min(snr2)],
        uplink_snr_db: vec![snr1, snr2],
    };
    println!(
        "downlink SNRs: {:.1} / {:.1} dB; joint = {:.1} dB",
        snr1,
        snr2,
        scenario.joint_downlink_snr_db()
    );

    let n_packets = 600;
    let spec = |mode| SessionSpec {
        mode,
        payload_len: 1460,
        n_packets,
        retry_limit: 7,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let single = run_session(
        &mut rng,
        &params,
        &per,
        &scenario,
        &spec(Mode::BestSingleAp),
    );
    let mut rng = StdRng::seed_from_u64(5);
    let joint = run_session(&mut rng, &params, &per, &scenario, &spec(Mode::SourceSync));

    println!("\n                 delivered   throughput   settled rate");
    println!(
        "single best AP : {:4}/{n_packets}    {:6.2} Mbps   {:?}",
        single.delivered,
        single.throughput_bps / 1e6,
        single.final_rate
    );
    println!(
        "SourceSync     : {:4}/{n_packets}    {:6.2} Mbps   {:?}",
        joint.delivered,
        joint.throughput_bps / 1e6,
        joint.final_rate
    );
    println!(
        "\ngain: {:.2}x (the paper's median across placements: 1.57x)",
        joint.throughput_bps / single.throughput_bps.max(1.0)
    );
}
