//! Synchronization calibration walk-through: the Symbol-Level Synchronizer
//! piece by piece.
//!
//! 1. Shows the SNR-dependent packet-detection delay (the problem).
//! 2. Shows the phase-slope detection-delay estimator cancelling it.
//! 3. Runs the probe protocol and compares estimated vs true delays.
//!
//! Run with: `cargo run --release --example sync_calibration`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::channel::Position;
use sourcesync::core::probe_pair;
use sourcesync::dsp::rng::ComplexGaussian;
use sourcesync::dsp::Fft;
use sourcesync::phy::preamble::{preamble_waveform, PreambleLayout};
use sourcesync::phy::{Detector, OfdmParams};
use sourcesync::sim::{ChannelModels, Network, NodeId};

fn main() {
    let params = OfdmParams::wiglan();
    let fft = Fft::new(params.fft_size);
    let det = Detector::new(&params, &fft);
    let layout = PreambleLayout::of(&params);
    let pre = preamble_waveform(&params, &fft);
    let ns_per_sample = params.sample_period_fs() as f64 * 1e-6;

    println!("== 1. raw detection-instant variability (the problem) ==");
    println!("   (paper §4.2(a): detection delay varies with SNR by 100s of ns)\n");
    println!("   snr_db   mean_detect_delay_ns   spread_ns");
    for snr_db in [6.0, 12.0, 25.0] {
        let noise_p = sourcesync::dsp::stats::linear_from_db(-snr_db);
        let mut delays = Vec::new();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let offset = 500usize;
            let mut buf =
                ComplexGaussian::with_power(noise_p).sample_vec(&mut rng, offset + pre.len() + 600);
            for (i, s) in pre.iter().enumerate() {
                buf[offset + i] += *s;
            }
            if let Some(d) = det.detect(&params, &buf, 0) {
                delays.push((d.detect_idx as f64 - offset as f64) * ns_per_sample);
            }
        }
        let mean = sourcesync::dsp::stats::mean(&delays);
        let spread = sourcesync::dsp::stats::std_dev(&delays);
        println!("   {snr_db:5.1}   {mean:18.1}   {spread:9.1}");
    }

    println!("\n== 2. phase-slope arrival estimation (the fix) ==");
    println!("   the same packets, timed via the channel phase slope:\n");
    println!("   snr_db   mean_timing_error_ns   spread_ns");
    let rx = sourcesync::phy::Receiver::new(params.clone());
    for snr_db in [6.0, 12.0, 25.0] {
        let noise_p = sourcesync::dsp::stats::linear_from_db(-snr_db);
        let mut errors = Vec::new();
        for seed in 100..130 {
            let mut rng = StdRng::seed_from_u64(seed);
            let offset = 500usize;
            // A quarter-sample fractional arrival to make the point.
            let delayed = sourcesync::dsp::delay::fractional_delay(&pre, 0.25);
            let mut buf = ComplexGaussian::with_power(noise_p)
                .sample_vec(&mut rng, offset + delayed.len() + 600);
            for (i, s) in delayed.iter().enumerate() {
                buf[offset + i] += *s;
            }
            if let Some(d) = det.detect(&params, &buf, 0) {
                // Build the arrival estimate the SLS uses.
                let _ = &rx;
                let est =
                    sourcesync::phy::chanest::estimate_from_lts(&params, &fft, &buf, d.lts_start);
                let frac = sourcesync::phy::chanest::detection_delay_samples(&params, &est, 3e6);
                let arrival = d.lts_start as f64 + frac - layout.lts_start() as f64;
                errors.push((arrival - offset as f64 - 0.25) * ns_per_sample);
            }
        }
        let mean = sourcesync::dsp::stats::mean(&errors);
        let spread = sourcesync::dsp::stats::std_dev(&errors);
        println!("   {snr_db:5.1}   {mean:18.2}   {spread:9.2}");
    }

    println!("\n== 3. the probe protocol end-to-end (Eq. 2) ==\n");
    let mut rng = StdRng::seed_from_u64(3);
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(18.0, 0.0),
        Position::new(9.0, 9.0),
    ];
    let mut net = Network::build(
        &mut rng,
        &params,
        &positions,
        &ChannelModels::clean(&params),
    );
    println!("   pair      estimated_ns   true_ns   error_ns");
    for (a, b) in [(0, 1), (0, 2), (1, 2)] {
        if let Some(p) = probe_pair(&mut net, &mut rng, NodeId(a), NodeId(b)) {
            println!(
                "   {a} <-> {b}   {:12.2}   {:7.2}   {:8.2}",
                p.delay_s * 1e9,
                p.true_delay_s * 1e9,
                (p.delay_s - p.true_delay_s) * 1e9
            );
        }
    }
    println!("\nhardware turnaround delays are constant per node and known locally;");
    println!("the probe protocol cancels them via the responder's self-report.");
}
