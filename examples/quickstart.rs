//! Quickstart: two senders, one receiver, one SourceSync joint frame —
//! driven through the staged `JointSession` API, one protocol role at a
//! time.
//!
//! Builds a three-node network on the simulated testbed floor, measures
//! propagation delays with the probe protocol, solves wait times, then
//! plays the §4.4 protocol explicitly: the lead's transmission
//! (`LeadTx`), the co-sender's detect → compensate → join
//! (`CosenderJoin`, with a typed `JoinFailure` if it cannot), and the
//! receiver's joint decode (`ReceiverDecode`).
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sourcesync::channel::Position;
use sourcesync::core::{CosenderPlan, DelayDatabase, JointConfig, JointSession};
use sourcesync::phy::OfdmParams;
use sourcesync::sim::{ChannelModels, Network, NodeId};

fn main() {
    let params = OfdmParams::dot11a();
    let models = ChannelModels::testbed(&params);
    let mut rng = StdRng::seed_from_u64(7);

    // Lead sender, co-sender, receiver on a 30 m office floor.
    let positions = vec![
        Position::new(2.0, 3.0),  // lead
        Position::new(10.0, 2.0), // co-sender
        Position::new(7.0, 14.0), // receiver
    ];
    let mut net = Network::build(&mut rng, &params, &positions, &models);
    let (lead, cosender, receiver) = (NodeId(0), NodeId(1), NodeId(2));

    println!("link SNRs:");
    println!("  lead   -> rx : {:6.1} dB", net.snr_db(lead, receiver));
    println!("  co     -> rx : {:6.1} dB", net.snr_db(cosender, receiver));
    println!("  lead   -> co : {:6.1} dB", net.snr_db(lead, cosender));

    // 1. Measure one-way delays and CFOs with the probe protocol (Eq. 2).
    let mut db = DelayDatabase::new();
    assert!(
        db.measure_all(&mut net, &mut rng, &[lead, cosender, receiver], 3),
        "probe phase failed — links too weak"
    );
    println!("\nmeasured one-way delays (vs geometric truth):");
    for (a, b) in [(lead, cosender), (lead, receiver), (cosender, receiver)] {
        println!(
            "  {a} <-> {b}: {:6.2} ns (true {:6.2} ns)",
            db.delay_s(a, b).unwrap() * 1e9,
            net.true_delay_s(a, b) * 1e9
        );
    }

    // 2. Solve the wait time (exact for a single receiver: w = T0 - t1).
    let sol = db.wait_solution(lead, &[cosender], &[receiver]).unwrap();
    println!("\nco-sender wait time: {:.2} ns", sol.waits[0] * 1e9);

    // 3. Describe the joint transmission once...
    let payload = b"hello from two synchronized senders at once".to_vec();
    let session = JointSession::new(lead)
        .cosender(CosenderPlan {
            node: cosender,
            wait_s: sol.waits[0],
        })
        .receiver(receiver)
        .payload(payload.clone())
        .config(JointConfig::default());

    // ...then drive each role's stage explicitly.
    let frame = session.lead_tx().transmit(&mut net);
    println!(
        "\nlead {lead}: sync header at t0, {} data symbols after SIFS + 1 training slot",
        frame.timeline.n_data_symbols
    );

    match session
        .cosender_join(0, &frame)
        .join(&mut net, &mut rng, &db)
    {
        Ok(tx) => println!(
            "co-sender {cosender}: joined (training at {:.3} µs, measured lead CFO {:+.0} Hz)",
            tx.training_time.as_secs_f64() * 1e6,
            tx.cfo_hz
        ),
        Err(reason) => println!("co-sender {cosender}: DID NOT JOIN — {reason}"),
    }

    let report = session
        .receiver_decode(receiver, &frame)
        .decode(&mut net, &mut rng);

    println!("\nreceiver report:");
    println!("  header decoded : {}", report.header_ok);
    println!("  co-sender seen : {}", report.co_channels[0].is_some());
    println!(
        "  payload        : {}",
        report
            .payload
            .as_ref()
            .map(|p| String::from_utf8_lossy(p).into_owned())
            .unwrap_or_else(|| "<decode failed>".into())
    );
    println!(
        "  measured misalignment: {:.1} ns",
        report.measured_misalign_s[0].unwrap_or(f64::NAN) * 1e9,
    );
    println!(
        "  mean effective gain  : {:.2} (vs ~1.0 for one unit-gain sender)",
        report.stats.mean_effective_gain
    );
    println!("  combined EVM SNR     : {:.1} dB", report.stats.evm_snr_db);
    assert_eq!(report.payload.as_deref(), Some(&payload[..]));
    println!("\njoint frame delivered successfully.");
}
